/** @file End-to-end tests for the BaseAP/SpAP executor. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "spap/executor.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

TEST(Baseline, BatchesAndCycles)
{
    Application app("a", "A");
    for (int i = 0; i < 4; ++i)
        app.addNfa(compileRegex("abcde", "p"));
    ApConfig config;
    config.capacity = 10; // 2 NFAs per batch
    BaselineResult r =
        runBaseline(app, config, bytes("0123456789"), false);
    EXPECT_EQ(r.batches, 2u);
    EXPECT_EQ(r.cycles, 20u);
    EXPECT_TRUE(r.reports.empty()); // not collected
}

TEST(Baseline, CollectsReportsWhenAsked)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "p"));
    ApConfig config;
    BaselineResult r = runBaseline(app, config, bytes("abab"), true);
    EXPECT_EQ(r.reports.size(), 2u);
}

TEST(Executor, ProfileSplitRespectsFraction)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "p"));
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.profileFraction = 0.25;
    opts.profileReferenceBytes = 0;
    std::vector<uint8_t> input(100, 'x');
    PreparedPartition prep = preparePartition(topo, opts, input);
    EXPECT_EQ(prep.profileInput.size(), 25u);
    EXPECT_EQ(prep.testInput.size(), 75u);

    // The default reference emulates the paper's 1 MiB stream: 0.1%
    // profiling means ~1 KiB regardless of the simulated input length.
    ExecutionOptions referenced;
    referenced.profileFraction = 0.001;
    std::vector<uint8_t> big(8192, 'x');
    PreparedPartition prep2 = preparePartition(topo, referenced, big);
    EXPECT_EQ(prep2.profileInput.size(), 1048u);

    // ...clamped to half the input for short streams.
    std::vector<uint8_t> small(1000, 'x');
    PreparedPartition prep3 = preparePartition(topo, referenced, small);
    EXPECT_EQ(prep3.profileInput.size(), 500u);
}

TEST(Executor, FullInputAsTestForAnchoredApps)
{
    Application app("a", "A");
    app.addNfa(compileRegex("^ab", "p"));
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.profileFraction = 0.25;
    opts.fullInputAsTest = true;
    std::vector<uint8_t> input(100, 'x');
    PreparedPartition prep = preparePartition(topo, opts, input);
    EXPECT_EQ(prep.testInput.size(), 100u);
}

TEST(Executor, PerfectlyColdTailGivesSpeedup)
{
    // Deep chains whose tails never fire: the hot set shrinks to the
    // profiled prefix and the baseline's extra batches disappear.
    Application app("a", "A");
    for (int i = 0; i < 8; ++i) {
        app.addNfa(compileRegex(
            "q" + std::string(1, static_cast<char>('a' + i)) +
                "0123456789abcdef",
            "p" + std::to_string(i)));
    }
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = app.totalStates() / 4 + 2;
    opts.profileFraction = 0.1;
    std::vector<uint8_t> input(4000, 'z'); // nothing ever matches 'q'
    SpapRunStats stats = runBaseApSpap(topo, opts, input);
    EXPECT_GT(stats.baselineBatches, stats.baseApBatches);
    EXPECT_GT(stats.speedup, 1.0);
    EXPECT_EQ(stats.intermediateReports, 0u);
    EXPECT_EQ(stats.spApCycles, 0u);
    EXPECT_GT(stats.resourceSavings, 0.5);
}

TEST(Executor, MispredictionRoutesThroughSpap)
{
    // The profile window sees only 'za'; the test stream contains the
    // full "zabc", so 'b','c' are mispredicted cold and must be handled
    // by SpAP events.
    Application app("a", "A");
    app.addNfa(compileRegex("zabc", "p"));
    // Ballast NFA so the app needs two batches at half capacity.
    app.addNfa(compileRegex("qrstu", "q"));
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = 6;
    opts.profileFraction = 0.1;
    opts.fillOptimization = false;

    std::string text = "za";
    text += std::string(18, 'x'); // profile = first 4 chars
    text += "zabc";
    text += std::string(10, 'x');
    SpapRunStats stats =
        runBaseApSpap(topo, opts, bytes(text), /*collect_reports=*/true);

    EXPECT_GT(stats.intermediateReports, 0u);
    EXPECT_GT(stats.spApCycles, 0u);
    ASSERT_EQ(stats.reports.size(), 1u); // the zabc match, via SpAP
}

TEST(Executor, JumpRatioHighWhenEventsSparse)
{
    Application app("a", "A");
    app.addNfa(compileRegex("zabcdefgh", "p"));
    app.addNfa(compileRegex("qrstuvwxy", "q"));
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = 10;
    opts.profileFraction = 0.05;
    opts.fillOptimization = false;

    std::string text(2000, 'x');
    text += "zab"; // a single late partial match
    text += std::string(2000, 'x');
    SpapRunStats stats = runBaseApSpap(topo, opts, bytes(text));
    if (stats.spApBatches > 0 && stats.intermediateReports > 0) {
        EXPECT_GT(stats.jumpRatio, 0.9);
    }
}

/**
 * THE core invariant (DESIGN.md invariant 1): for random applications,
 * random inputs and profile-derived partitions, the merged BaseAP+SpAP
 * report stream equals the monolithic execution's reports.
 */
TEST(Executor, PropertyExecutionEquivalence)
{
    Rng rng(2024);
    for (int trial = 0; trial < 60; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.sodProb = trial % 4 == 0 ? 0.5 : 0.0;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(5), params);
        std::vector<uint8_t> input = testing::randomInput(rng, 300, 16);

        AppTopology topo(app);
        ExecutionOptions opts;
        opts.ap.capacity = 1 + rng.index(app.totalStates() + 10);
        opts.profileFraction = 0.05 + rng.real() * 0.4;
        opts.fillOptimization = trial % 2 == 0;
        opts.partition.dedupeIntermediates = trial % 3 == 0;

        PreparedPartition prep = preparePartition(topo, opts, input);
        SpapRunStats stats = runBaseApSpap(topo, opts, prep, true);

        ReportList want = testing::naiveSimulate(
            app, prep.testInput);
        EXPECT_EQ(stats.reports, want) << "trial " << trial;

        // Cycle accounting sanity.
        EXPECT_EQ(stats.baseApCycles,
                  stats.baseApBatches * stats.testLength);
        EXPECT_GE(stats.baselineBatches, stats.baseApBatches);
        if (stats.spApBatches == 0) {
            EXPECT_EQ(stats.spApCycles, 0u);
        }
    }
}

/** Property: forcing every layer cut still preserves equivalence. */
TEST(Executor, PropertyEquivalenceAtForcedLayers)
{
    Rng rng(2025);
    for (int trial = 0; trial < 30; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.4;
        params.reportProb = 0.4;
        Application app = testing::randomApplication(rng, 2, params);
        std::vector<uint8_t> input = testing::randomInput(rng, 150, 8);
        AppTopology topo(app);

        // Bypass profiling: cut at arbitrary (legal) layers.
        PartitionLayers layers;
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            const uint32_t lo =
                testing::minPartitionLayer(app.nfa(u), topo.nfa(u));
            layers.k.push_back(static_cast<uint32_t>(
                rng.uniform(lo, topo.nfa(u).maxOrder)));
        }
        PartitionedApp part = partitionApplication(topo, layers);

        // Hand-roll the BaseAP -> SpAP flow on the full input.
        FlatAutomaton hot_fa(part.hot);
        Engine hot_engine(hot_fa);
        SimResult hot_run = hot_engine.run(input);

        ReportList got;
        std::vector<SpapEvent> events;
        for (const Report &r : hot_run.reports) {
            const GlobalStateId target = part.intermediateTarget[r.state];
            if (target != kInvalidGlobal) {
                events.push_back(
                    {r.position, part.originalToCold[target]});
            } else {
                got.push_back({r.position, part.hotToOriginal[r.state]});
            }
        }
        if (part.cold.nfaCount() > 0) {
            FlatAutomaton cold_fa(part.cold);
            SpapResult sr = runSpapMode(cold_fa, input, events);
            for (const Report &r : sr.reports)
                got.push_back(
                    {r.position, part.coldToOriginal[r.state]});
        }
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, testing::naiveSimulate(app, input))
            << "trial " << trial;
    }
}

} // namespace
} // namespace sparseap
