/**
 * @file
 * The parallel per-app sweep driver (ExperimentRunner::forEachApp) must
 * be invisible in all output: tables, CSV renderings and captured log
 * lines are byte-identical whether the sweep runs on 1 lane or 8.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/sparseap.h"

namespace sparseap {
namespace {

// globalOptions() is parsed once per process, so pin the environment to a
// small deterministic configuration before the first ExperimentRunner.
const bool kEnvReady = [] {
    setenv("SPARSEAP_INPUT_KB", "4", 1);
    setenv("SPARSEAP_SCALE", "3", 1);
    setenv("SPARSEAP_APPS", "EM,Rg05,DS03,RF2,LV,CAV", 1);
    setenv("SPARSEAP_VERBOSE", "1", 1);
    return true;
}();

struct SweepOutput
{
    std::string ascii;
    std::string csv;
    std::string logs;
};

/** A fig10-shaped sweep: partition + run every app, render the table. */
SweepOutput
runSweep(unsigned jobs)
{
    EXPECT_TRUE(kEnvReady);
    ExperimentRunner runner;

    struct Row
    {
        std::string abbr;
        double speedup = 0.0;
        double savings = 0.0;
        size_t stalls = 0;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());
    EXPECT_EQ(rows.size(), 6u);

    std::ostringstream errs;
    std::streambuf *old = std::cerr.rdbuf(errs.rdbuf());
    runner.forEachApp(
        "HML",
        [&](const LoadedApp &app, size_t i) {
            const size_t capacity =
                app.workload.app.totalStates() / 4 + 8;
            const SpapRunStats s = runAppConfig(app, 0.01, capacity);
            rows[i] = {app.entry.abbr, s.speedup, s.resourceSavings,
                       s.enableStalls};
        },
        jobs);
    std::cerr.rdbuf(old);

    Table table({"App", "Speedup", "Savings", "Stalls"});
    for (const Row &r : rows) {
        table.addRow({r.abbr, Table::fmt(r.speedup, 2),
                      Table::pct(r.savings), std::to_string(r.stalls)});
    }
    std::ostringstream ascii, csv;
    table.print(ascii);
    table.printCsv(csv);
    return {ascii.str(), csv.str(), errs.str()};
}

TEST(ExperimentSweep, ByteIdenticalOutputAcrossJobCounts)
{
    const SweepOutput seq = runSweep(1);
    const SweepOutput par = runSweep(8);

    EXPECT_EQ(seq.ascii, par.ascii);
    EXPECT_EQ(seq.csv, par.csv);
    EXPECT_EQ(seq.logs, par.logs);

    // Sanity: the sweep actually produced a populated table and logs.
    for (const char *abbr : {"EM", "Rg05", "DS03", "RF2", "LV", "CAV"})
        EXPECT_NE(seq.ascii.find(abbr), std::string::npos) << abbr;
    EXPECT_NE(seq.logs.find("generated EM"), std::string::npos);
}

TEST(ExperimentSweep, MatchesSequentialLoadResults)
{
    ExperimentRunner runner;
    std::vector<double> swept(runner.selectApps("HML").size(), -1.0);
    runner.forEachApp(
        "HML",
        [&](const LoadedApp &app, size_t i) {
            const size_t capacity =
                app.workload.app.totalStates() / 4 + 8;
            swept[i] = runAppConfig(app, 0.01, capacity).speedup;
        },
        8);

    const std::vector<std::string> apps = runner.selectApps("HML");
    for (size_t i = 0; i < apps.size(); ++i) {
        const LoadedApp &app = runner.load(apps[i]);
        const size_t capacity = app.workload.app.totalStates() / 4 + 8;
        EXPECT_EQ(swept[i], runAppConfig(app, 0.01, capacity).speedup)
            << apps[i];
    }
}

TEST(ExperimentSweep, CachedArtifactsAreStableAndCorrect)
{
    ExperimentRunner runner;
    const LoadedApp &app = runner.load("EM");

    // referenceReports simulates once and caches; it matches a fresh
    // engine run and later calls return the same object.
    const ReportList &reports = app.referenceReports();
    Engine engine(app.flat());
    EXPECT_EQ(reports, engine.run(app.input).reports);
    EXPECT_EQ(&reports, &app.referenceReports());

    // The cached flat automaton is also handed to runBaseline so report
    // collection skips re-flattening; results are unchanged.
    const ApConfig config;
    const BaselineResult with_fa =
        runBaseline(app.workload.app, config, app.input, true, &app.flat());
    const BaselineResult without_fa =
        runBaseline(app.workload.app, config, app.input, true);
    EXPECT_EQ(with_fa.reports, without_fa.reports);
    EXPECT_EQ(with_fa.reports, reports);
    EXPECT_EQ(with_fa.batches, without_fa.batches);

    // Profile objects are cached per prefix length.
    const HotColdProfile &p = app.profile(app.input.size() / 2);
    EXPECT_EQ(&p, &app.profile(app.input.size() / 2));
}

TEST(ExperimentSweep, CapturedLogsReplayInCatalogOrder)
{
    ExperimentRunner runner;
    std::ostringstream errs;
    std::streambuf *old = std::cerr.rdbuf(errs.rdbuf());
    runner.forEachApp("HML", [](const LoadedApp &, size_t) {}, 8);
    std::cerr.rdbuf(old);

    // The "generated <abbr>" lines must appear in catalog order even
    // though 8 lanes raced to produce them.
    const std::string logs = errs.str();
    size_t pos = 0;
    for (const std::string &abbr : runner.selectApps("HML")) {
        const size_t at = logs.find("generated " + abbr, pos);
        ASSERT_NE(at, std::string::npos) << abbr << " in:\n" << logs;
        pos = at + 1;
    }
}

} // namespace
} // namespace sparseap
