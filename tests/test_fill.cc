/** @file Tests for the batch-fill optimization and layer size tables. */

#include <gtest/gtest.h>

#include "ap/batching.h"
#include "common/rng.h"
#include "partition/fill.h"
#include "regex/glushkov.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

TEST(LayerSizes, ChainTables)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    AppTopology topo(app);
    LayerSizeTable t =
        computeLayerSizes(app.nfa(0), topo.nfa(0), false);
    ASSERT_EQ(t.maxOrder, 4u);
    EXPECT_EQ(t.statesUpTo, (std::vector<size_t>{1, 2, 3, 4}));
    // Cutting at k<4 always cuts exactly one chain edge.
    EXPECT_EQ(t.cutAt, (std::vector<size_t>{1, 1, 1, 0}));
    EXPECT_EQ(t.fragmentSize(1), 2u);
    EXPECT_EQ(t.fragmentSize(4), 4u);
}

TEST(LayerSizes, DedupeSharedTarget)
{
    Application app("a", "A");
    app.addNfa(compileRegex("(a|b)c", "p"));
    AppTopology topo(app);
    LayerSizeTable per_edge =
        computeLayerSizes(app.nfa(0), topo.nfa(0), false);
    LayerSizeTable dedup =
        computeLayerSizes(app.nfa(0), topo.nfa(0), true);
    EXPECT_EQ(per_edge.cutAt[0], 2u);
    EXPECT_EQ(dedup.cutAt[0], 1u);
    EXPECT_EQ(per_edge.cutAt[1], 0u);
}

/**
 * Property: the size table matches an actual partition at every layer.
 */
TEST(LayerSizes, PropertyTableMatchesPartitioner)
{
    Rng rng(15);
    for (int trial = 0; trial < 30; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.maxStates = 18;
        Application app = testing::randomApplication(rng, 1, params);
        AppTopology topo(app);
        for (bool dedupe : {false, true}) {
            LayerSizeTable t =
                computeLayerSizes(app.nfa(0), topo.nfa(0), dedupe);
            const uint32_t lo =
                testing::minPartitionLayer(app.nfa(0), topo.nfa(0));
            for (uint32_t k = lo; k <= t.maxOrder; ++k) {
                PartitionLayers layers;
                layers.k = {k};
                PartitionOptions opts;
                opts.dedupeIntermediates = dedupe;
                PartitionedApp part =
                    partitionApplication(topo, layers, opts);
                EXPECT_EQ(t.fragmentSize(k), part.hot.totalStates())
                    << "k=" << k << " dedupe=" << dedupe;
            }
        }
    }
}

TEST(Fill, RaisesLayersUpToBudget)
{
    // Two 4-chains, capacity 6, initial layers (1,1): hot = 2*(1+1)=4,
    // one batch of 6 -> raising layers must stop at total <= 6.
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    app.addNfa(compileRegex("wxyz", "q"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {1, 1};
    PartitionLayers filled = fillToCapacity(topo, layers, 6);
    size_t total = 0;
    for (uint32_t u = 0; u < 2; ++u) {
        LayerSizeTable t =
            computeLayerSizes(app.nfa(u), topo.nfa(u), false);
        total += t.fragmentSize(filled.k[u]);
    }
    EXPECT_LE(total, 6u);
    EXPECT_GT(filled.k[0] + filled.k[1], 2u); // something was raised
}

TEST(Fill, FullLayersSaturate)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "p"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {2};
    PartitionLayers filled = fillToCapacity(topo, layers, 100);
    EXPECT_EQ(filled.k[0], 2u); // already at maxOrder
}

/**
 * Property: filling never lowers a layer and never increases the batch
 * count of the hot set.
 */
TEST(Fill, PropertyMonotoneAndBatchPreserving)
{
    Rng rng(16);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        Application app =
            testing::randomApplication(rng, 2 + rng.index(5), params);
        AppTopology topo(app);

        PartitionLayers layers;
        std::vector<size_t> before_sizes;
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            layers.k.push_back(static_cast<uint32_t>(
                rng.uniform(1, topo.nfa(u).maxOrder)));
        }
        const size_t capacity = rng.uniform(8, 60);

        PartitionOptions opts;
        opts.dedupeIntermediates = trial % 2 == 0;

        std::vector<size_t> sizes0, sizes1;
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            LayerSizeTable t = computeLayerSizes(app.nfa(u), topo.nfa(u),
                                                 opts.dedupeIntermediates);
            sizes0.push_back(t.fragmentSize(layers.k[u]));
        }

        PartitionLayers filled =
            fillToCapacity(topo, layers, capacity, opts);
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            EXPECT_GE(filled.k[u], layers.k[u]);
            EXPECT_LE(filled.k[u], topo.nfa(u).maxOrder);
            LayerSizeTable t = computeLayerSizes(app.nfa(u), topo.nfa(u),
                                                 opts.dedupeIntermediates);
            sizes1.push_back(t.fragmentSize(filled.k[u]));
        }
        EXPECT_LE(packSizes(sizes1, capacity).batchCount(),
                  packSizes(sizes0, capacity).batchCount());
    }
}

} // namespace
} // namespace sparseap
