/** @file Tests for the Glushkov regex -> homogeneous NFA compiler. */

#include <algorithm>
#include <functional>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/engine.h"

namespace sparseap {
namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

/**
 * Reference matcher: the set of end offsets (exclusive) of matches of
 * @p node starting at @p pos — an independent, direct AST interpreter.
 */
std::set<size_t>
matchEnds(const RegexNode &node, const std::string &s, size_t pos)
{
    switch (node.op) {
      case RegexOp::Epsilon:
        return {pos};
      case RegexOp::Sym:
        if (pos < s.size() &&
            node.symbols.test(static_cast<uint8_t>(s[pos]))) {
            return {pos + 1};
        }
        return {};
      case RegexOp::Cat: {
        std::set<size_t> cur = {pos};
        for (const auto &child : node.children) {
            std::set<size_t> next;
            for (size_t p : cur) {
                for (size_t e : matchEnds(*child, s, p))
                    next.insert(e);
            }
            cur = std::move(next);
            if (cur.empty())
                break;
        }
        return cur;
      }
      case RegexOp::Alt: {
        std::set<size_t> out;
        for (const auto &child : node.children) {
            for (size_t e : matchEnds(*child, s, pos))
                out.insert(e);
        }
        return out;
      }
      case RegexOp::Opt: {
        std::set<size_t> out = matchEnds(*node.children[0], s, pos);
        out.insert(pos);
        return out;
      }
      case RegexOp::Star:
      case RegexOp::Plus: {
        std::set<size_t> out;
        std::set<size_t> frontier = {pos};
        if (node.op == RegexOp::Star)
            out.insert(pos);
        while (!frontier.empty()) {
            std::set<size_t> next;
            for (size_t p : frontier) {
                for (size_t e : matchEnds(*node.children[0], s, p)) {
                    if (!out.count(e)) {
                        out.insert(e);
                        if (e > p)
                            next.insert(e);
                    }
                }
            }
            frontier = std::move(next);
        }
        if (node.op == RegexOp::Plus && !out.count(pos)) {
            // ok: plus does not include the empty repetition unless the
            // child is nullable (handled by the recursion already).
        }
        return out;
      }
    }
    return {};
}

/** Reference report positions (end - 1) for unanchored matching. */
std::set<uint32_t>
referencePositions(const ParsedRegex &re, const std::string &s)
{
    std::set<uint32_t> out;
    const size_t max_start = re.anchored ? 0 : s.size();
    for (size_t i = 0; i <= max_start && i <= s.size(); ++i) {
        for (size_t e : matchEnds(*re.root, s, i)) {
            if (e > i)
                out.insert(static_cast<uint32_t>(e - 1));
        }
    }
    return out;
}

/** Engine report positions for a compiled pattern. */
std::set<uint32_t>
enginePositions(const std::string &pattern, const std::string &input)
{
    Application app("t", "T");
    app.addNfa(compileRegex(pattern, "t"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    std::set<uint32_t> out;
    for (const Report &r : engine.run(bytes(input)).reports)
        out.insert(r.position);
    return out;
}

void
expectSamePositions(const std::string &pattern, const std::string &input)
{
    ParsedRegex re = parseRegex(pattern);
    EXPECT_EQ(enginePositions(pattern, input),
              referencePositions(re, input))
        << "pattern '" << pattern << "' input '" << input << "'";
}

TEST(Glushkov, BasicShapes)
{
    expectSamePositions("abc", "zzabczabc");
    expectSamePositions("a|b", "aabba");
    expectSamePositions("ab*c", "ac abc abbbbc");
    expectSamePositions("a+", "aaa");
    expectSamePositions("a?b", "b ab");
    expectSamePositions("(ab|cd)+e", "ababcde cdabe");
    expectSamePositions("a.c", "abc axc a c");
    expectSamePositions("[a-c]+d", "abcd bd zd");
    expectSamePositions("a{3}", "aaaa");
    expectSamePositions("a{2,4}b", "aab aaaab ab");
    expectSamePositions("^ab", "abab");
    expectSamePositions("^a+b", "aab ab");
}

TEST(Glushkov, ReportingStatesAreLastPositions)
{
    Nfa nfa = compileRegex("ab|cd", "t");
    EXPECT_EQ(nfa.reportingCount(), 2u);
    nfa = compileRegex("abc", "t");
    EXPECT_EQ(nfa.reportingCount(), 1u);
}

TEST(Glushkov, StartStatesAreFirstPositions)
{
    Nfa nfa = compileRegex("ab|cd", "t");
    EXPECT_EQ(nfa.startStates().size(), 2u);
    nfa = compileRegex("a*bc", "t");
    // first = {a, b} since a* is nullable.
    EXPECT_EQ(nfa.startStates().size(), 2u);
}

TEST(Glushkov, AnchoredUsesStartOfData)
{
    Nfa nfa = compileRegex("^ab", "t");
    EXPECT_EQ(nfa.state(nfa.startStates()[0]).start,
              StartKind::StartOfData);
    nfa = compileRegex("ab", "t");
    EXPECT_EQ(nfa.state(nfa.startStates()[0]).start, StartKind::AllInput);
}

TEST(Glushkov, PositionCountEqualsStates)
{
    for (const char *p : {"abc", "a(b|c)d", "a{4}", "x[0-9]+y"}) {
        ParsedRegex re = parseRegex(p);
        const size_t positions = countPositions(*re.root);
        Nfa nfa = compileRegex(re, p);
        EXPECT_EQ(nfa.size(), positions) << p;
    }
}

/** Property: random patterns vs the reference AST interpreter. */
TEST(Glushkov, PropertyRandomPatterns)
{
    Rng rng(404);
    const std::string alphabet = "abc";

    // Random pattern synthesis from a tiny grammar.
    std::function<std::string(int)> gen = [&](int depth) -> std::string {
        const int kind =
            static_cast<int>(rng.uniform(0, depth > 2 ? 1 : 6));
        switch (kind) {
          case 0:
          case 1:
            return std::string(1, alphabet[rng.index(3)]);
          case 2:
            return "(" + gen(depth + 1) + "|" + gen(depth + 1) + ")";
          case 3:
            return "(" + gen(depth + 1) + ")*";
          case 4:
            return "(" + gen(depth + 1) + ")?";
          case 5:
            return "(" + gen(depth + 1) + ")+";
          default:
            return gen(depth + 1) + gen(depth + 1);
        }
    };

    int checked = 0;
    for (int trial = 0; trial < 400 && checked < 150; ++trial) {
        const std::string pattern = gen(0);
        ParsedRegex re = parseRegex(pattern);
        if (countPositions(*re.root) == 0)
            continue; // pure-epsilon patterns compile to nothing
        ++checked;
        std::string input;
        const size_t len = rng.uniform(1, 24);
        for (size_t i = 0; i < len; ++i)
            input += alphabet[rng.index(3)];
        expectSamePositions(pattern, input);
    }
    EXPECT_GE(checked, 100);
}

} // namespace
} // namespace sparseap
