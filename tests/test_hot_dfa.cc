/**
 * @file
 * Hot-DFA determinization tests: table shape and report semantics on
 * hand-built automata, deterministic construction, budget bailouts
 * (state count and table bytes), engine fallback when the budget blows,
 * report equality of sparse/dense/DFA on random automata and on every
 * registered workload, and store round-trips that preserve an attached
 * DFA (and the lazy no-DFA-by-default encode policy).
 */

#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/engine.h"
#include "sim/hot_dfa.h"
#include "store/artifact.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

namespace fs = std::filesystem;
using store::BlobView;
using store::BlobWriter;

ReportList
sortedReports(Engine &engine, std::span<const uint8_t> input)
{
    ReportList r = engine.run(input).reports;
    std::sort(r.begin(), r.end());
    return r;
}

/** Limits far above anything these tests construct. */
HotDfa::Limits
roomyLimits()
{
    HotDfa::Limits limits;
    limits.stateBudget = 1 << 20;
    limits.tableBytes = size_t{1} << 30;
    return limits;
}

std::vector<uint8_t>
bytesOf(std::string_view s)
{
    return {s.begin(), s.end()};
}

/**
 * Unanchored /ab/: state 0 is pre-input, one state per activated set
 * {a-position}, {b-position}, {} (miss), and {a,b} never co-activate.
 */
TEST(HotDfa, SinglePatternShape)
{
    Application app("p", "P");
    app.addNfa(compileRegex("ab", "p"));
    FlatAutomaton fa(app);

    auto dfa = HotDfa::build(fa, roomyLimits());
    ASSERT_NE(dfa, nullptr);
    // Reachable: pre-input, {}, {a}, {b}. Two classes: 'a', 'b' vs rest?
    // 'a' and 'b' are distinct columns, everything else is a third class
    // only if some state accepts it — here no state does, so bytes other
    // than 'a'/'b' pool into one class.
    EXPECT_EQ(dfa->classes(), fa.symbolClassCount());
    EXPECT_EQ(dfa->states(), 4u);
    EXPECT_EQ(dfa->tableBytes(),
              dfa->states() * dfa->classes() * sizeof(uint32_t));

    // Pre-input and the start state emit nothing; exactly one reachable
    // state (activated = {b-position}) reports.
    EXPECT_TRUE(dfa->reportsOf(0).empty());
    size_t reporting_states = 0;
    uint64_t total_reports = 0;
    for (uint32_t s = 0; s < dfa->states(); ++s) {
        const auto r = dfa->reportsOf(s);
        EXPECT_TRUE(std::is_sorted(r.begin(), r.end())) << "state " << s;
        reporting_states += r.empty() ? 0 : 1;
        total_reports += r.size();
    }
    EXPECT_EQ(reporting_states, 1u);
    EXPECT_EQ(total_reports, dfa->reportCount());

    // Walking the table by hand matches the sparse core.
    const std::vector<uint8_t> input = bytesOf("abxabab");
    uint32_t state = 0;
    ReportList walked;
    for (size_t i = 0; i < input.size(); ++i) {
        state = dfa->next(state, input[i]);
        for (GlobalStateId id : dfa->reportsOf(state))
            walked.push_back({static_cast<uint32_t>(i), id});
    }
    Engine sparse(fa, EngineMode::Sparse);
    std::sort(walked.begin(), walked.end());
    EXPECT_EQ(walked, sortedReports(sparse, input));
}

/** Same automaton, same limits: byte-identical tables (BFS order). */
TEST(HotDfa, ConstructionIsDeterministic)
{
    Rng rng(20180622);
    testing::RandomNfaParams params;
    params.reportProb = 0.4;
    params.universalProb = 0.2;
    Application app = testing::randomApplication(rng, 4, params);
    FlatAutomaton fa(app);

    auto a = HotDfa::build(fa, roomyLimits());
    auto b = HotDfa::build(fa, roomyLimits());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    const HotDfa::Parts pa = a->parts();
    const HotDfa::Parts pb = b->parts();
    EXPECT_EQ(pa.states, pb.states);
    EXPECT_EQ(pa.classes, pb.classes);
    EXPECT_TRUE(std::equal(pa.table.begin(), pa.table.end(),
                           pb.table.begin(), pb.table.end()));
    EXPECT_TRUE(std::equal(pa.reportBegin.begin(), pa.reportBegin.end(),
                           pb.reportBegin.begin(), pb.reportBegin.end()));
    EXPECT_TRUE(std::equal(pa.reportIds.begin(), pa.reportIds.end(),
                           pb.reportIds.begin(), pb.reportIds.end()));
}

/**
 * A latching (universal self-loop) reporting state keeps firing every
 * cycle once entered — the DFA must reach a sink that reports forever.
 */
TEST(HotDfa, LatchedReportingKeepsFiring)
{
    Nfa nfa("latch");
    const StateId trigger =
        nfa.addState(SymbolSet::single('t'), StartKind::AllInput, false);
    const StateId latch = nfa.addState(SymbolSet::all(), StartKind::None,
                                       true);
    nfa.addEdge(trigger, latch);
    nfa.addEdge(latch, latch);
    nfa.finalize();
    Application app("latch", "L");
    app.addNfa(std::move(nfa));
    FlatAutomaton fa(app);

    auto dfa = HotDfa::build(fa, roomyLimits());
    ASSERT_NE(dfa, nullptr);

    const std::vector<uint8_t> input = bytesOf("xxtxxx");
    uint32_t state = 0;
    size_t reports = 0;
    for (uint8_t b : input) {
        state = dfa->next(state, b);
        reports += dfa->reportsOf(state).size();
    }
    EXPECT_EQ(reports, 3u); // every cycle after the 't' at position 2

    Engine dfa_engine(fa, EngineMode::Dfa);
    Engine sparse(fa, EngineMode::Sparse);
    SimResult run = dfa_engine.run(input);
    EXPECT_TRUE(run.usedDfa);
    std::sort(run.reports.begin(), run.reports.end());
    EXPECT_EQ(run.reports, sortedReports(sparse, input));
}

/** /a.{k}/ tracks 'a' sightings over a k-byte window: ~2^(k+1) sets. */
Application
windowApp(int k)
{
    Application app("window", "W");
    app.addNfa(compileRegex("a.{" + std::to_string(k) + "}", "w"));
    return app;
}

TEST(HotDfa, StateBudgetBailsOut)
{
    Application app = windowApp(12); // > 4096 activated sets
    FlatAutomaton fa(app);

    HotDfa::Limits limits = roomyLimits();
    limits.stateBudget = 2048;
    EXPECT_EQ(HotDfa::build(fa, limits), nullptr);

    // The same automaton with a small window fits comfortably.
    Application small = windowApp(6);
    FlatAutomaton small_fa(small);
    auto dfa = HotDfa::build(small_fa, limits);
    ASSERT_NE(dfa, nullptr);
    EXPECT_LE(dfa->states(), limits.stateBudget);
}

TEST(HotDfa, TableByteBudgetBailsOut)
{
    Application app = windowApp(6);
    FlatAutomaton fa(app);

    HotDfa::Limits limits = roomyLimits();
    limits.tableBytes = 64; // a handful of transitions at most
    EXPECT_EQ(HotDfa::build(fa, limits), nullptr);
}

/**
 * EngineMode::Dfa on an automaton whose subset construction blows the
 * default budget must fall back to the dense core — and still match.
 */
TEST(HotDfa, EngineFallsBackToDenseOnBailout)
{
    Application app = windowApp(12);
    FlatAutomaton fa(app);
    ASSERT_EQ(fa.ensureHotDfa(), nullptr); // default budget blows

    Rng rng(7);
    std::vector<uint8_t> input(600);
    for (uint8_t &b : input)
        b = rng.index(3) == 0 ? 'a' : 'x';

    Engine dfa_engine(fa, EngineMode::Dfa);
    Engine sparse(fa, EngineMode::Sparse);
    SimResult run = dfa_engine.run(input);
    EXPECT_FALSE(run.usedDfa);
    EXPECT_TRUE(run.usedDenseCore);
    std::sort(run.reports.begin(), run.reports.end());
    EXPECT_EQ(run.reports, sortedReports(sparse, input));
}

/** DFA == sparse == naive oracle on random automata. */
TEST(HotDfa, PropertyMatchesSparseAndNaiveOnRandomAutomata)
{
    Rng rng(20180623);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.sodProb = trial % 3 == 0 ? 0.5 : 0.0;
        params.universalProb = trial % 2 == 0 ? 0.3 : 0.12;
        Application app = testing::randomApplication(
            rng, 1 + rng.index(4), params);
        std::vector<uint8_t> input =
            testing::randomInput(rng, 250, params.alphabetSize);

        FlatAutomaton fa(app);
        Engine dfa_engine(fa, EngineMode::Dfa);
        Engine sparse(fa, EngineMode::Sparse);
        const ReportList want = sortedReports(sparse, input);
        EXPECT_EQ(sortedReports(dfa_engine, input), want)
            << "trial " << trial;
        EXPECT_EQ(want, testing::naiveSimulate(app, input))
            << "trial " << trial;
    }
}

/**
 * Sparse, dense, and DFA mode emit identical reports on every registered
 * workload. Realistic rule sets usually blow the determinization budget
 * — then DFA mode *is* the dense core and the check still holds; where
 * the budget suffices the DFA table itself is gated.
 */
TEST(HotDfa, PropertyAllEnginesMatchOnAllWorkloads)
{
    Rng input_rng(20180621);
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1536;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);

        FlatAutomaton fa(w.app);
        Engine sparse(fa, EngineMode::Sparse);
        Engine dense(fa, EngineMode::Dense);
        Engine dfa(fa, EngineMode::Dfa);
        const ReportList want = sortedReports(sparse, input);
        EXPECT_EQ(sortedReports(dense, input), want) << entry.abbr;
        EXPECT_EQ(sortedReports(dfa, input), want) << entry.abbr;
    }
}

/** Round-trip through an on-disk blob, DFA attached. */
TEST(HotDfa, StoreRoundTripPreservesDfa)
{
    Application app = windowApp(5);
    FlatAutomaton fa(app);
    auto built = fa.ensureHotDfa();
    ASSERT_NE(built, nullptr);

    const fs::path dir =
        fs::temp_directory_path() / "sparseap_test_hot_dfa";
    fs::create_directories(dir);
    const std::string path = (dir / "dfa.apb").string();

    BlobWriter w(store::ArtifactKind::FlatAutomaton, 0x1dfa);
    store::encodeFlatAutomaton(fa, w);
    std::string error;
    ASSERT_TRUE(w.commit(path, &error)) << error;

    auto blob = BlobView::open(path, &error);
    ASSERT_NE(blob, nullptr) << error;
    auto loaded = store::decodeFlatAutomaton(*blob, 0, &error);
    ASSERT_NE(loaded, nullptr) << error;

    // The DFA is attached at decode time — no construction on this path.
    auto warm = loaded->hotDfaIfBuilt();
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(warm->states(), built->states());
    EXPECT_EQ(warm->classes(), built->classes());
    EXPECT_EQ(warm->tableBytes(), built->tableBytes());
    EXPECT_EQ(warm->reportCount(), built->reportCount());
    const HotDfa::Parts a = built->parts();
    const HotDfa::Parts b = warm->parts();
    EXPECT_TRUE(std::equal(a.table.begin(), a.table.end(),
                           b.table.begin(), b.table.end()));
    EXPECT_TRUE(std::equal(a.reportIds.begin(), a.reportIds.end(),
                           b.reportIds.begin(), b.reportIds.end()));

    Rng rng(11);
    const std::vector<uint8_t> input = testing::randomInput(rng, 400, 4);
    Engine fresh(fa, EngineMode::Dfa);
    Engine reloaded(*loaded, EngineMode::Dfa);
    SimResult run = reloaded.run(input);
    EXPECT_TRUE(run.usedDfa);
    std::sort(run.reports.begin(), run.reports.end());
    EXPECT_EQ(run.reports, sortedReports(fresh, input));

    fs::remove_all(dir);
}

/** Encoding an undeterminized automaton must not trigger construction. */
TEST(HotDfa, EncodeWithoutBuildStaysLazy)
{
    Application app = windowApp(5);
    FlatAutomaton fa(app);
    ASSERT_EQ(fa.hotDfaIfBuilt(), nullptr);

    BlobWriter w(store::ArtifactKind::FlatAutomaton, 0x2dfa);
    store::encodeFlatAutomaton(fa, w);
    EXPECT_EQ(fa.hotDfaIfBuilt(), nullptr);

    std::string error;
    auto blob = BlobView::fromBuffer(w.finalize(), &error);
    ASSERT_NE(blob, nullptr) << error;
    EXPECT_EQ(blob->findSection(store::kFaDfaMeta), nullptr);
    auto loaded = store::decodeFlatAutomaton(*blob, 0, &error);
    ASSERT_NE(loaded, nullptr) << error;
    EXPECT_EQ(loaded->hotDfaIfBuilt(), nullptr);
}

} // namespace
} // namespace sparseap
