/** @file Tests for profiling-based hot/cold prediction and layer choice. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/hotcold.h"
#include "regex/glushkov.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

TEST(HotCold, ProfileMatchesEngineHotSet)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    FlatAutomaton fa(app);
    HotColdProfile prof = profileApplication(fa, bytes("abxx"));
    // hot: a (start), b, c. cold: d.
    EXPECT_EQ(prof.hotCount(), 3u);
    EXPECT_TRUE(prof.hot[0]);
    EXPECT_TRUE(prof.hot[1]);
    EXPECT_TRUE(prof.hot[2]);
    EXPECT_FALSE(prof.hot[3]);
    EXPECT_DOUBLE_EQ(prof.hotFraction(), 0.75);
}

TEST(HotCold, ChooseLayersIsMaxHotOrder)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));  // chain, layers 1..4
    app.addNfa(compileRegex("xy", "q"));    // chain, layers 1..2
    AppTopology topo(app);

    FlatAutomaton fa(app);
    HotColdProfile prof = profileApplication(fa, bytes("abz"));
    // NFA 0: hot up to layer 3 ('c' enabled); NFA 1: only the start.
    PartitionLayers layers = chooseLayers(topo, prof);
    EXPECT_EQ(layers.k[0], 3u);
    EXPECT_EQ(layers.k[1], 1u);
}

TEST(HotCold, StartStatesForceLayerAtLeastOne)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    AppTopology topo(app);
    FlatAutomaton fa(app);
    // Nothing in the input matches 'a' at all.
    HotColdProfile prof = profileApplication(fa, bytes("zzzz"));
    PartitionLayers layers = chooseLayers(topo, prof);
    EXPECT_EQ(layers.k[0], 1u);
}

TEST(HotCold, PredictedHotCountAndExpansion)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {2};
    EXPECT_EQ(predictedHotCount(topo, layers), 2u);
    std::vector<bool> hot = layersToPredictedHot(topo, layers);
    EXPECT_EQ(hot, (std::vector<bool>{true, true, false, false}));
}

/**
 * Property: the predicted hot set derived from a profile is a superset
 * of the profile's hot set (the layer rule only rounds *up* to whole
 * layers), and exactly the states at or above the layer.
 */
TEST(HotCold, PropertyLayerExpansionIsSuperset)
{
    Rng rng(21);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(4), params);
        std::vector<uint8_t> input = testing::randomInput(rng, 120, 32);

        AppTopology topo(app);
        FlatAutomaton fa(app);
        HotColdProfile prof = profileApplication(fa, input);
        PartitionLayers layers = chooseLayers(topo, prof);
        std::vector<bool> predicted = layersToPredictedHot(topo, layers);

        size_t predicted_count = 0;
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            const GlobalStateId base = app.nfaOffset(u);
            for (StateId s = 0; s < app.nfa(u).size(); ++s) {
                const GlobalStateId gid = base + s;
                if (prof.hot[gid]) {
                    EXPECT_TRUE(predicted[gid]);
                }
                EXPECT_EQ(predicted[gid],
                          topo.nfa(u).order[s] <= layers.k[u]);
                predicted_count += predicted[gid];
            }
        }
        EXPECT_EQ(predicted_count, predictedHotCount(topo, layers));
        EXPECT_GE(predicted_count, prof.hotCount());
    }
}

} // namespace
} // namespace sparseap
