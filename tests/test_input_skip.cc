/**
 * @file
 * Quiescence input-skip tests (SPARSEAP_INPUT_SKIP): the scan primitive
 * against its scalar reference on every supported SIMD tier, the dense
 * core's consumed+skipped accounting, and the headline guarantee — every
 * registered workload produces a byte-identical report stream with the
 * skip on and off, on every engine core, under every ISA. The skip is an
 * optimization, never an approximation.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vec.h"
#include "sim/dense_core.h"
#include "sim/engine.h"
#include "sim/hot_dfa.h"
#include "store/artifact.h"
#include "support/random_nfa.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

using simd::Isa;
using simd::ScanMask;

/** Restore the process-wide ISA override when a test scope ends. */
struct IsaGuard
{
    ~IsaGuard() { simd::setIsa(simd::bestIsa()); }
};

std::vector<Isa>
supportedIsas()
{
    std::vector<Isa> isas;
    for (Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512})
        if (simd::isaSupported(isa))
            isas.push_back(isa);
    return isas;
}

/** Random 256-bit byte set with roughly @p set_per_64 bits per word. */
std::array<uint64_t, 4>
randomByteSet(Rng &rng, unsigned set_per_64)
{
    std::array<uint64_t, 4> bits{};
    for (uint64_t &w : bits)
        for (unsigned k = 0; k < set_per_64; ++k)
            w |= 1ull << rng.index(64);
    return bits;
}

TEST(ScanMask, FromBitsRoundTripAndPopulation)
{
    Rng rng(20260810);
    for (int trial = 0; trial < 50; ++trial) {
        const std::array<uint64_t, 4> bits =
            randomByteSet(rng, 1 + trial % 8);
        const ScanMask m = ScanMask::fromBits(bits.data());
        unsigned want_pop = 0;
        for (unsigned b = 0; b < 256; ++b) {
            const bool want = (bits[b >> 6] >> (b & 63)) & 1;
            EXPECT_EQ(m.test(static_cast<uint8_t>(b)), want) << b;
            want_pop += want ? 1 : 0;
        }
        EXPECT_EQ(m.population(), want_pop);
    }
}

/**
 * The shuffle classifier on every supported tier against the obvious
 * scalar scan, over lengths straddling every vector width, unaligned
 * slices, and masks from near-empty to near-full.
 */
TEST(ScanMask, ScanMatchesScalarOnAllSupportedTiers)
{
    IsaGuard guard;
    const std::vector<Isa> isas = supportedIsas();
    ASSERT_FALSE(isas.empty());

    const size_t lengths[] = {0,  1,  2,  3,   7,   8,   15,  16, 17,
                              31, 32, 33, 63,  64,  65,  127, 128,
                              129, 200, 255, 256, 300};
    Rng rng(20260811);
    for (int trial = 0; trial < 8; ++trial) {
        const std::array<uint64_t, 4> bits =
            randomByteSet(rng, trial == 0 ? 0 : 1u << (trial % 6));
        const ScanMask m = ScanMask::fromBits(bits.data());

        for (size_t n : lengths) {
            for (size_t off : {size_t{0}, size_t{1}, size_t{3}}) {
                std::vector<uint8_t> data(n + off);
                for (uint8_t &b : data)
                    b = static_cast<uint8_t>(rng.index(256));

                size_t want = n;
                for (size_t i = 0; i < n; ++i) {
                    if (m.test(data[off + i])) {
                        want = i;
                        break;
                    }
                }
                for (Isa isa : isas) {
                    ASSERT_TRUE(simd::setIsa(isa));
                    EXPECT_EQ(simd::ops().scanForByteMask(
                                  data.data() + off, n, m),
                              want)
                        << simd::isaName(isa) << " trial " << trial
                        << " n=" << n << " off=" << off;
                }
            }
        }
    }

    // All-boring input: the scan must report the full length, and an
    // interesting first byte must stop it at zero, on every tier.
    std::array<uint64_t, 4> one{};
    one['x' >> 6] = 1ull << ('x' & 63); // only 'x' (0x78) is interesting
    const ScanMask m = ScanMask::fromBits(one.data());
    std::vector<uint8_t> boring(517, 'a');
    for (Isa isa : isas) {
        ASSERT_TRUE(simd::setIsa(isa));
        EXPECT_EQ(simd::ops().scanForByteMask(boring.data(),
                                              boring.size(), m),
                  boring.size())
            << simd::isaName(isa);
        boring[200] = 'x';
        EXPECT_EQ(simd::ops().scanForByteMask(boring.data(),
                                              boring.size(), m),
                  200u)
            << simd::isaName(isa);
        boring[0] = 'x';
        EXPECT_EQ(
            simd::ops().scanForByteMask(boring.data(), boring.size(), m),
            0u)
            << simd::isaName(isa);
        boring[0] = 'a';
        boring[200] = 'a';
    }
}

/** Skip-driven dense run, mirroring the engine's runDense loop. */
ReportList
runDenseSkipping(DenseCore &core, std::span<const uint8_t> input)
{
    ReportList reports;
    core.reset(/*install_starts=*/true);
    size_t i = 0;
    const size_t n = input.size();
    while (i < n) {
        i += core.trySkip(input.data() + i, n - i);
        if (i >= n)
            break;
        core.step(input[i], static_cast<uint32_t>(i), &reports);
        ++i;
    }
    return reports;
}

/**
 * Dense-core accounting: every input byte is either stepped (cycles) or
 * skipped (skippedSymbols), never both, never dropped — and the skipped
 * run's reports equal the stepped run's byte for byte.
 */
TEST(InputSkip, DenseCoreConsumedPlusSkippedCoversInput)
{
    Rng input_rng(20180621);
    size_t skipped_somewhere = 0;
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 2048;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);
        FlatAutomaton fa(w.app);

        DenseCore plain(fa);
        plain.reset(true);
        ReportList want;
        for (size_t i = 0; i < input.size(); ++i)
            plain.step(input[i], static_cast<uint32_t>(i), &want);

        DenseCore skipping(fa);
        const ReportList got = runDenseSkipping(skipping, input);
        EXPECT_EQ(got, want) << entry.abbr;

        const DenseCore::StepStats &ds = skipping.stepStats();
        EXPECT_EQ(ds.cycles + ds.skippedSymbols, input.size())
            << entry.abbr;
        if (ds.skippedSymbols > 0) {
            ++skipped_somewhere;
            EXPECT_GT(ds.jumps, 0u) << entry.abbr;
            EXPECT_GE(ds.skippedSymbols, ds.jumps) << entry.abbr;
        }
    }
    // The property is vacuous if no workload ever skips.
    EXPECT_GT(skipped_somewhere, 0u);
}

/**
 * The headline differential: all 26 registered workloads, every engine
 * core that can skip (dense, DFA-with-fallback, auto handover), every
 * supported SIMD tier — skip-on and skip-off report streams must be
 * byte-identical, in order, without sorting.
 */
TEST(InputSkip, PropertyReportsByteIdenticalAcrossModesAndIsas)
{
    IsaGuard guard;
    const std::vector<Isa> isas = supportedIsas();

    Rng input_rng(20180621);
    size_t checked = 0;
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1024;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);
        FlatAutomaton fa(w.app);

        for (Isa isa : isas) {
            ASSERT_TRUE(simd::setIsa(isa));
            for (EngineMode mode : {EngineMode::Dense, EngineMode::Dfa,
                                    EngineMode::Auto}) {
                Engine off(fa, mode);
                off.setInputSkip(false);
                const SimResult r_off = off.run(input);
                EXPECT_EQ(r_off.skippedSymbols, 0u);

                Engine on(fa, mode);
                on.setInputSkip(true);
                const SimResult r_on = on.run(input);

                EXPECT_EQ(r_on.reports, r_off.reports)
                    << entry.abbr << " mode "
                    << engineModeName(mode) << " under "
                    << simd::isaName(isa);
                EXPECT_LE(r_on.skippedSymbols, input.size());
                EXPECT_EQ(r_on.cycles, input.size());
                ++checked;
            }
        }
    }
    ASSERT_GT(checked, 0u);
}

/** Random automata: skip on/off differential beyond the catalog. */
TEST(InputSkip, RandomizedDenseDifferential)
{
    Rng rng(20260812);
    for (int trial = 0; trial < 20; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = trial % 4 == 0 ? 0.05 : 0.3;
        params.universalProb = trial % 2 == 0 ? 0.3 : 0.1;
        params.extraStartProb = trial % 3 == 0 ? 0.4 : 0.0;
        Application app = testing::randomApplication(
            rng, 2 + rng.index(8), params);
        const std::vector<uint8_t> input =
            testing::randomInput(rng, 600, params.alphabetSize);
        FlatAutomaton fa(app);

        Engine off(fa, EngineMode::Dense);
        off.setInputSkip(false);
        Engine on(fa, EngineMode::Dense);
        on.setInputSkip(true);
        EXPECT_EQ(on.run(input).reports, off.run(input).reports)
            << "trial " << trial;
    }
}

/**
 * Store round trip: the v3 scan-table sections reattach on decode — the
 * decoded DFA carries the same skippable-state set without rebuilding,
 * and the decoded automaton skips to the same report stream.
 */
TEST(InputSkip, StoreRoundTripPreservesSkipTables)
{
    Rng input_rng(20180621);
    Workload w = generateWorkload("Bro217", 7, 5);
    size_t bytes = 2048;
    if (w.inputBytesCap > 0)
        bytes = std::min(bytes, w.inputBytesCap);
    const std::vector<uint8_t> input =
        synthesizeInput(w.input, bytes, input_rng);
    FlatAutomaton fa(w.app);
    const std::shared_ptr<const HotDfa> dfa = fa.ensureHotDfa();
    ASSERT_NE(dfa, nullptr);

    store::BlobWriter bw(store::ArtifactKind::FlatAutomaton, 0x5c47);
    store::encodeFlatAutomaton(fa, bw);
    std::string error;
    auto blob = store::BlobView::fromBuffer(bw.finalize(), &error);
    ASSERT_NE(blob, nullptr) << error;
    ASSERT_NE(blob->findSection(store::kFaDenseScanMask), nullptr);
    ASSERT_NE(blob->findSection(store::kFaDfaSkipIndex), nullptr);

    std::unique_ptr<FlatAutomaton> decoded =
        store::decodeFlatAutomaton(*blob, 0, &error);
    ASSERT_NE(decoded, nullptr) << error;
    const std::shared_ptr<const HotDfa> warm = decoded->hotDfaIfBuilt();
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(warm->skippableStates(), dfa->skippableStates());
    EXPECT_EQ(decoded->denseView().staticScan, fa.denseView().staticScan);

    Engine off(fa, EngineMode::Dfa);
    off.setInputSkip(false);
    Engine on(*decoded, EngineMode::Dfa);
    on.setInputSkip(true);
    EXPECT_EQ(on.run(input).reports, off.run(input).reports);
}

} // namespace
} // namespace sparseap
