/** @file Tests for the input synthesizer. */

#include <gtest/gtest.h>

#include "workloads/inputs.h"

namespace sparseap {
namespace {

TEST(Inputs, ExactLength)
{
    InputSpec spec;
    Rng rng(1);
    for (size_t n : {size_t{0}, size_t{1}, size_t{1000}, size_t{65536}})
        EXPECT_EQ(synthesizeInput(spec, n, rng).size(), n);
}

TEST(Inputs, AlphabetRestriction)
{
    InputSpec spec;
    spec.base = InputSpec::Base::Alphabet;
    spec.alphabet = "ACGT";
    Rng rng(2);
    auto input = synthesizeInput(spec, 5000, rng);
    for (uint8_t b : input) {
        EXPECT_TRUE(b == 'A' || b == 'C' || b == 'G' || b == 'T')
            << static_cast<int>(b);
    }
}

TEST(Inputs, AlphabetCoversAllSymbols)
{
    InputSpec spec;
    spec.base = InputSpec::Base::Alphabet;
    spec.alphabet = "xy";
    Rng rng(3);
    auto input = synthesizeInput(spec, 1000, rng);
    bool saw_x = false, saw_y = false;
    for (uint8_t b : input) {
        saw_x = saw_x || b == 'x';
        saw_y = saw_y || b == 'y';
    }
    EXPECT_TRUE(saw_x);
    EXPECT_TRUE(saw_y);
}

TEST(Inputs, PlantsAppear)
{
    InputSpec spec;
    spec.base = InputSpec::Base::Alphabet;
    spec.alphabet = "z";
    spec.plants = {"HELLO"};
    spec.plantRate = 0.02;
    spec.fullPlantProb = 1.0; // always full copies
    Rng rng(4);
    auto input = synthesizeInput(spec, 20000, rng);
    const std::string text(input.begin(), input.end());
    EXPECT_NE(text.find("HELLO"), std::string::npos);
}

TEST(Inputs, PrefixTruncationKeepsPrefixesOnly)
{
    InputSpec spec;
    spec.base = InputSpec::Base::Alphabet;
    spec.alphabet = "z";
    spec.plants = {"ABCDEFG"};
    spec.plantRate = 0.05;
    spec.fullPlantProb = 0.0;
    spec.prefixKeepProb = 0.5;
    Rng rng(5);
    auto input = synthesizeInput(spec, 20000, rng);
    const std::string text(input.begin(), input.end());
    // 'A' must appear (every plant starts with it)...
    EXPECT_NE(text.find('A'), std::string::npos);
    // ...and any 'B' must follow an 'A' (prefix property).
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == 'B') {
            ASSERT_GT(i, 0u);
            EXPECT_EQ(text[i - 1], 'A');
        }
    }
    // Truncation means strictly fewer full copies than starts.
    size_t starts = 0, fulls = 0;
    for (size_t i = 0; i + 7 <= text.size(); ++i) {
        if (text[i] == 'A') {
            ++starts;
            if (text.compare(i, 7, "ABCDEFG") == 0)
                ++fulls;
        }
    }
    EXPECT_GT(starts, 0u);
    EXPECT_LT(fulls, starts);
}

TEST(Inputs, LateBytesRespectQuietPrefix)
{
    InputSpec spec;
    spec.base = InputSpec::Base::Alphabet;
    spec.alphabet = "a";
    spec.lateBytes = "9";
    spec.lateRate = 0.5;
    spec.quietFraction = 0.25;
    Rng rng(6);
    auto input = synthesizeInput(spec, 10000, rng);
    const size_t quiet_end = 2500;
    for (size_t i = 0; i < quiet_end; ++i)
        EXPECT_NE(input[i], '9') << "late byte at " << i;
    size_t nines = 0;
    for (size_t i = quiet_end; i < input.size(); ++i)
        nines += input[i] == '9';
    EXPECT_GT(nines, 2000u); // roughly half the late region
}

TEST(Inputs, DeterministicUnderSeed)
{
    InputSpec spec;
    spec.plants = {"XYZ"};
    spec.plantRate = 0.01;
    Rng a(9), b(9), c(10);
    EXPECT_EQ(synthesizeInput(spec, 4096, a),
              synthesizeInput(spec, 4096, b));
    EXPECT_NE(synthesizeInput(spec, 4096, a),
              synthesizeInput(spec, 4096, c));
}

} // namespace
} // namespace sparseap
