/**
 * @file
 * Integration tests: the whole pipeline on scaled-down versions of the
 * paper's applications — generation, serialization, profiling,
 * partitioning, BaseAP/SpAP execution, and report equivalence.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/sparseap.h"
#include "support/naive_sim.h"

namespace sparseap {
namespace {

/** Apps light enough (at 3% scale) to oracle-check with the naive sim. */
const char *const kLightApps[] = {"Bro217", "EM",  "Rg05", "DS03",
                                  "RF2",    "LV",  "CAV",  "Brill",
                                  "Pro",    "PEN"};

TEST(Integration, EquivalenceAcrossRealWorkloads)
{
    for (const char *abbr : kLightApps) {
        Workload w = generateWorkload(abbr, 99, 3);
        Rng input_rng(1234);
        std::vector<uint8_t> input =
            synthesizeInput(w.input, 16 * 1024, input_rng);

        AppTopology topo(w.app);
        ExecutionOptions opts;
        // Force multiple batches: a quarter of the app per config.
        opts.ap.capacity = w.app.totalStates() / 4 + 8;
        opts.profileFraction = 0.02;
        opts.fullInputAsTest = w.fullInputAsTest;

        PreparedPartition prep = preparePartition(topo, opts, input);
        SpapRunStats stats = runBaseApSpap(topo, opts, prep, true);

        EXPECT_EQ(stats.reports,
                  testing::naiveSimulate(w.app, prep.testInput))
            << abbr;
        EXPECT_GE(stats.baselineBatches, 2u) << abbr;
    }
}

TEST(Integration, SerializationRoundTripOfGeneratedApp)
{
    Workload w = generateWorkload("Snort", 5, 2);
    Application back = applicationFromString(toString(w.app));
    ASSERT_EQ(back.totalStates(), w.app.totalStates());
    ASSERT_EQ(back.nfaCount(), w.app.nfaCount());

    // Execution over the round-tripped app is identical.
    Rng input_rng(5);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 8 * 1024, input_rng);
    FlatAutomaton fa_a(w.app), fa_b(back);
    Engine ea(fa_a), eb(fa_b);
    EXPECT_EQ(ea.run(input).reports, eb.run(input).reports);
}

TEST(Integration, SpeedupTracksResourceSavingsModel)
{
    // For a workload with a perfectly cold tail, the measured speedup
    // approaches the Section III-C model ceil(S/C)/ceil((1-p)S/C).
    Workload w = generateWorkload("CAV", 42, 5);
    Rng input_rng(42);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 32 * 1024, input_rng);

    AppTopology topo(w.app);
    ExecutionOptions opts;
    opts.ap.capacity = w.app.totalStates() / 6 + 8;
    opts.profileFraction = 0.01;
    SpapRunStats stats = runBaseApSpap(topo, opts, input);

    // ClamAV on benign input is overwhelmingly cold.
    EXPECT_GT(stats.resourceSavings, 0.5);
    EXPECT_GT(stats.speedup, 1.5);
    // Speedup can never beat the batch-count ratio.
    EXPECT_LE(stats.speedup,
              static_cast<double>(stats.baselineBatches) /
                  static_cast<double>(stats.baseApBatches) + 1e-9);
}

TEST(Integration, FermiHasNoSavings)
{
    Workload w = generateWorkload("Fermi", 7, 3);
    Rng input_rng(7);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 16 * 1024, input_rng);
    AppTopology topo(w.app);
    ExecutionOptions opts;
    opts.ap.capacity = w.app.totalStates() / 2 + 8;
    opts.profileFraction = 0.01;
    opts.fullInputAsTest = true;
    SpapRunStats stats = runBaseApSpap(topo, opts, input);
    // Everything is hot: nothing is saved and performance is unchanged.
    EXPECT_LT(stats.resourceSavings, 0.1);
    EXPECT_NEAR(stats.speedup, 1.0, 0.2);
}

TEST(Integration, ErSccPreventsPartitioning)
{
    Workload w = generateWorkload("ER", 7, 3);
    Rng input_rng(8);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 16 * 1024, input_rng);
    AppTopology topo(w.app);

    // Oracle analysis: lots of cold states, but the topological partition
    // cannot exclude them (Fig. 8's ER outlier).
    FlatAutomaton fa(w.app);
    HotColdProfile oracle = profileApplication(fa, input);
    ConstrainedStats cs = constrainedStates(topo, oracle);
    EXPECT_GT(cs.constrainedFraction(), 0.2);
}

TEST(Integration, PowerEnGeneratesSimultaneousReportStorm)
{
    Workload w = generateWorkload("PEN", 7, 10);
    Rng input_rng(9);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 32 * 1024, input_rng);
    AppTopology topo(w.app);
    ExecutionOptions opts;
    opts.ap.capacity = w.app.totalStates() / 3 + 8;
    opts.profileFraction = 0.001; // inside the digit-quiet prefix
    SpapRunStats stats = runBaseApSpap(topo, opts, input);
    EXPECT_GT(stats.intermediateReports, 1000u);
    // The storm is simultaneous: stalls are a sizable share of reports.
    // Simultaneity grows with the NFA count, so at this 10% scale the
    // bar is lower than the full-scale behaviour (where stalls dominate,
    // as in Table IV).
    EXPECT_GT(stats.enableStalls, stats.intermediateReports / 10);
}

TEST(Integration, ProfilingQualityImprovesWithPrefixSize)
{
    // Table I's trend: a longer profile has higher recall.
    Workload w = generateWorkload("Pro", 11, 4);
    Rng input_rng(11);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 64 * 1024, input_rng);
    const FlatAutomaton fa(w.app);

    const size_t half = input.size() / 2;
    const std::span<const uint8_t> test_half(input.data() + half, half);
    HotColdProfile reference = profileApplication(fa, test_half);

    double prev_recall = -1.0;
    for (double frac : {0.002, 0.02, 0.2, 1.0}) {
        const size_t n = std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(half) * frac));
        HotColdProfile prof = profileApplication(
            fa, std::span<const uint8_t>(input.data(), n));
        PredictionMetrics m =
            comparePrediction(prof.hot, reference.hot);
        EXPECT_GE(m.recall(), prev_recall - 0.02)
            << "recall regressed at " << frac;
        prev_recall = m.recall();
    }
    EXPECT_GT(prev_recall, 0.9); // the full first half predicts well
}

} // namespace
} // namespace sparseap
