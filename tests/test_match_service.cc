/**
 * @file
 * MatchService session-table tests: the service is a scheduling and
 * residency layer over EngineSession, so its contract is byte-level —
 * any open/feed/close interleaving across tenants and streams, under
 * any resident-session budget, must produce per-stream report multisets
 * identical to whole-input Engine::run over each stream's concatenated
 * bytes. (Multisets, not sequences: the service runs the safe all-bytes
 * stream alphabet, which may reorder reports within one position vs the
 * exact-alphabet whole-input run; digests sort first, like
 * bench/multi_stream.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/match_service.h"
#include "sim/engine.h"
#include "store/format.h"
#include "workloads/registry.h"

using namespace sparseap;
using namespace sparseap::serve;

namespace {

uint64_t
sortedDigest(ReportList reports)
{
    std::sort(reports.begin(), reports.end());
    store::DigestBuilder d;
    for (const Report &r : reports) {
        d.add(r.position);
        d.add(r.state);
    }
    return d.digest();
}

struct ServiceFixture
{
    std::vector<std::shared_ptr<FlatAutomaton>> automata;
    std::vector<std::string> names;
    std::vector<std::vector<uint8_t>> inputs; ///< one per tenant

    explicit ServiceFixture(std::initializer_list<const char *> abbrs,
                            size_t input_bytes = 32 * 1024)
    {
        Rng rng(123);
        for (const char *abbr : abbrs) {
            Workload w = generateWorkload(abbr, 7, 5);
            automata.push_back(std::make_shared<FlatAutomaton>(w.app));
            names.push_back(abbr);
            inputs.push_back(
                synthesizeInput(w.input, input_bytes, rng));
        }
    }

    void registerAll(MatchService *service) const
    {
        for (size_t i = 0; i < automata.size(); ++i)
            service->addTenant(names[i], automata[i]);
    }

    uint64_t wholeInputDigest(size_t tenant,
                              std::span<const uint8_t> input) const
    {
        Engine engine(*automata[tenant], EngineMode::Auto);
        return sortedDigest(engine.run(input).reports);
    }
};

} // namespace

TEST(MatchService, TenantRegistry)
{
    ServiceFixture fx({"Bro217", "Brill"});
    MatchService service;
    fx.registerAll(&service);
    EXPECT_TRUE(service.hasTenant("Bro217"));
    EXPECT_TRUE(service.hasTenant("Brill"));
    EXPECT_FALSE(service.hasTenant("nope"));
    const auto tenants = service.tenants();
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_GT(tenants[0].states, 0u);
}

TEST(MatchService, OpenFeedCloseMatchesWholeInputRun)
{
    ServiceFixture fx({"Bro217", "Brill"});
    MatchService service;
    fx.registerAll(&service);

    for (size_t t = 0; t < fx.names.size(); ++t) {
        const auto &input = fx.inputs[t];
        ASSERT_EQ(service.open(fx.names[t], 1), OpStatus::Ok);
        ReportList all;
        const size_t chunk = 1000; // deliberately odd-sized
        for (size_t off = 0; off < input.size(); off += chunk) {
            const size_t n = std::min(chunk, input.size() - off);
            ReportGroup group;
            ASSERT_EQ(service.feed(fx.names[t], 1,
                                   {input.data() + off, n}, &group),
                      OpStatus::Ok);
            EXPECT_EQ(group.streamOffset, off + n);
            all.insert(all.end(), group.reports.begin(),
                       group.reports.end());
        }
        ReportGroup tail;
        ASSERT_EQ(service.close(fx.names[t], 1, &tail), OpStatus::Ok);
        EXPECT_EQ(tail.streamOffset, input.size());
        all.insert(all.end(), tail.reports.begin(), tail.reports.end());
        EXPECT_EQ(sortedDigest(std::move(all)),
                  fx.wholeInputDigest(t, input));
    }
    EXPECT_EQ(service.openStreamCount(), 0u);
}

TEST(MatchService, TableErrors)
{
    ServiceFixture fx({"Bro217"});
    MatchServiceConfig config;
    config.maxStreamsPerTenant = 2;
    MatchService service(config);
    fx.registerAll(&service);

    ReportGroup group;
    EXPECT_EQ(service.open("nope", 1), OpStatus::UnknownTenant);
    EXPECT_EQ(service.feed("nope", 1, {}, &group),
              OpStatus::UnknownTenant);
    EXPECT_EQ(service.feed("Bro217", 9, {}, &group),
              OpStatus::UnknownStream);
    EXPECT_EQ(service.close("Bro217", 9, &group),
              OpStatus::UnknownStream);

    EXPECT_EQ(service.open("Bro217", 1), OpStatus::Ok);
    EXPECT_EQ(service.open("Bro217", 1), OpStatus::StreamExists);
    EXPECT_EQ(service.open("Bro217", 2), OpStatus::Ok);
    EXPECT_EQ(service.open("Bro217", 3), OpStatus::TooManyStreams);
}

TEST(MatchService, ParkingUnderTinyBudgetStaysByteIdentical)
{
    // 16 interleaved streams against a 2-resident budget: all but two
    // live as snapshots at any time, so every round trips through
    // suspend()/resume(). The report digests must not notice.
    ServiceFixture fx({"Bro217"});
    MatchServiceConfig config;
    config.residentSessions = 2;
    config.sessionPoolSize = 2;
    MatchService service(config);
    fx.registerAll(&service);

    constexpr size_t kStreams = 16;
    const auto &input = fx.inputs[0];
    std::vector<ReportList> collected(kStreams);
    for (size_t s = 0; s < kStreams; ++s)
        ASSERT_EQ(service.open("Bro217", s), OpStatus::Ok);

    const size_t chunk = 777;
    for (size_t off = 0; off < input.size(); off += chunk) {
        const size_t n = std::min(chunk, input.size() - off);
        for (size_t s = 0; s < kStreams; ++s) {
            ReportGroup group;
            ASSERT_EQ(service.feed("Bro217", s,
                                   {input.data() + off, n}, &group),
                      OpStatus::Ok);
            collected[s].insert(collected[s].end(),
                                group.reports.begin(),
                                group.reports.end());
        }
        EXPECT_LE(service.stats().residentSessions,
                  config.residentSessions);
    }

    const uint64_t want = fx.wholeInputDigest(0, input);
    for (size_t s = 0; s < kStreams; ++s) {
        ReportGroup tail;
        ASSERT_EQ(service.close("Bro217", s, &tail), OpStatus::Ok);
        collected[s].insert(collected[s].end(), tail.reports.begin(),
                            tail.reports.end());
        EXPECT_EQ(sortedDigest(std::move(collected[s])), want)
            << "stream " << s;
    }

    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.parks, 0u);
    EXPECT_GT(stats.resumes, 0u);
    EXPECT_EQ(stats.activeStreams, 0u);
    EXPECT_EQ(stats.parkedBytes, 0u);
    EXPECT_EQ(stats.residentSessions, 0u);
}

TEST(MatchService, ParkedBytesTrackSnapshotSizes)
{
    ServiceFixture fx({"Bro217"});
    MatchServiceConfig config;
    config.residentSessions = 1;
    MatchService service(config);
    fx.registerAll(&service);

    ASSERT_EQ(service.open("Bro217", 1), OpStatus::Ok);
    ASSERT_EQ(service.open("Bro217", 2), OpStatus::Ok);
    ReportGroup group;
    const auto &input = fx.inputs[0];
    ASSERT_EQ(service.feed("Bro217", 1, {input.data(), 4096}, &group),
              OpStatus::Ok);
    ASSERT_EQ(service.feed("Bro217", 2, {input.data(), 4096}, &group),
              OpStatus::Ok);
    // Stream 1 was parked to make room for stream 2's session.
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.residentSessions, 1u);
    EXPECT_EQ(stats.parkedSessions, 1u);
    EXPECT_GT(stats.parkedBytes, 0u);
}

TEST(MatchService, FeedManyUsesFusedDfaPath)
{
    ServiceFixture fx({"Bro217"});
    ASSERT_NE(fx.automata[0]->ensureHotDfa(), nullptr)
        << "Bro217@5% must determinize for this test";
    MatchService service;
    SessionConfig session;
    session.mode = EngineMode::Dfa;
    service.addTenant("Bro217", fx.automata[0], session);

    constexpr size_t kStreams = 8;
    const auto &input = fx.inputs[0];
    for (size_t s = 0; s < kStreams; ++s)
        ASSERT_EQ(service.open("Bro217", s), OpStatus::Ok);

    std::vector<ReportList> collected(kStreams);
    const size_t chunk = 4096;
    for (size_t off = 0; off < input.size(); off += chunk) {
        const size_t n = std::min(chunk, input.size() - off);
        std::vector<FeedEntry> entries;
        for (size_t s = 0; s < kStreams; ++s)
            entries.push_back({s, {input.data() + off, n}});
        std::vector<ReportGroup> groups;
        ASSERT_EQ(service.feedMany("Bro217", entries, &groups),
                  OpStatus::Ok);
        ASSERT_EQ(groups.size(), kStreams);
        for (size_t s = 0; s < kStreams; ++s) {
            EXPECT_EQ(groups[s].streamId, s);
            collected[s].insert(collected[s].end(),
                                groups[s].reports.begin(),
                                groups[s].reports.end());
        }
    }

    Engine engine(*fx.automata[0], EngineMode::Dfa);
    const uint64_t want = sortedDigest(engine.run(input).reports);
    for (size_t s = 0; s < kStreams; ++s) {
        ReportGroup tail;
        ASSERT_EQ(service.close("Bro217", s, &tail), OpStatus::Ok);
        collected[s].insert(collected[s].end(), tail.reports.begin(),
                            tail.reports.end());
        EXPECT_EQ(sortedDigest(std::move(collected[s])), want)
            << "stream " << s;
    }
    EXPECT_GT(service.stats().fusedFeeds, 0u);
}

TEST(MatchService, FeedManyDuplicateStreamIdsFeedInOrder)
{
    ServiceFixture fx({"Bro217"});
    MatchService service;
    fx.registerAll(&service);
    ASSERT_EQ(service.open("Bro217", 1), OpStatus::Ok);

    const auto &input = fx.inputs[0];
    const size_t half = input.size() / 2;
    std::vector<FeedEntry> entries = {
        {1, {input.data(), half}},
        {1, {input.data() + half, input.size() - half}},
    };
    std::vector<ReportGroup> groups;
    ASSERT_EQ(service.feedMany("Bro217", entries, &groups),
              OpStatus::Ok);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[1].streamOffset, input.size());

    ReportList all;
    for (const ReportGroup &g : groups)
        all.insert(all.end(), g.reports.begin(), g.reports.end());
    ReportGroup tail;
    ASSERT_EQ(service.close("Bro217", 1, &tail), OpStatus::Ok);
    all.insert(all.end(), tail.reports.begin(), tail.reports.end());
    EXPECT_EQ(sortedDigest(std::move(all)),
              fx.wholeInputDigest(0, input));
}

TEST(MatchService, OneShotAndBatchMatchWholeInputRun)
{
    ServiceFixture fx({"Bro217"});
    MatchService service;
    fx.registerAll(&service);
    const auto &input = fx.inputs[0];
    const uint64_t want = fx.wholeInputDigest(0, input);

    ReportGroup group;
    ASSERT_EQ(service.matchOneShot("Bro217", input, &group),
              OpStatus::Ok);
    EXPECT_EQ(sortedDigest(group.reports), want);
    EXPECT_EQ(group.streamOffset, input.size());

    std::vector<std::span<const uint8_t>> inputs(5,
                                                 std::span(input));
    std::vector<ReportGroup> groups;
    ASSERT_EQ(service.matchBatch("Bro217", inputs, &groups),
              OpStatus::Ok);
    ASSERT_EQ(groups.size(), 5u);
    for (const ReportGroup &g : groups)
        EXPECT_EQ(sortedDigest(g.reports), want);
}

TEST(MatchService, ReleaseOwnerSweepsOnlyThatOwner)
{
    ServiceFixture fx({"Bro217"});
    MatchService service;
    fx.registerAll(&service);
    ASSERT_EQ(service.open("Bro217", 1, /*owner=*/100), OpStatus::Ok);
    ASSERT_EQ(service.open("Bro217", 2, /*owner=*/100), OpStatus::Ok);
    ASSERT_EQ(service.open("Bro217", 3, /*owner=*/200), OpStatus::Ok);

    EXPECT_EQ(service.releaseOwner(100), 2u);
    EXPECT_EQ(service.openStreamCount(), 1u);
    ReportGroup group;
    EXPECT_EQ(service.feed("Bro217", 1, {}, &group),
              OpStatus::UnknownStream);
    EXPECT_EQ(service.feed("Bro217", 3, fx.inputs[0], &group),
              OpStatus::Ok);
    EXPECT_EQ(service.releaseOwner(200), 1u);
    EXPECT_EQ(service.openStreamCount(), 0u);
}

TEST(MatchService, ConcurrentStreamsStayIsolated)
{
    // 8 threads, each its own stream, feeding concurrently under a
    // budget that forces parking races; every stream's digest must
    // still match the whole-input run (TSan leg doubles as the data
    // race check here).
    ServiceFixture fx({"Bro217", "Brill"});
    MatchServiceConfig config;
    config.residentSessions = 3;
    MatchService service(config);
    fx.registerAll(&service);

    constexpr size_t kThreads = 8;
    std::vector<uint64_t> digests(kThreads);
    std::vector<std::thread> threads;
    for (size_t s = 0; s < kThreads; ++s) {
        threads.emplace_back([&, s] {
            const size_t tenant = s % fx.names.size();
            const auto &input = fx.inputs[tenant];
            ASSERT_EQ(service.open(fx.names[tenant], s), OpStatus::Ok);
            ReportList all;
            const size_t chunk = 1024 + 128 * s; // distinct grids
            for (size_t off = 0; off < input.size(); off += chunk) {
                const size_t n = std::min(chunk, input.size() - off);
                ReportGroup group;
                ASSERT_EQ(service.feed(fx.names[tenant], s,
                                       {input.data() + off, n},
                                       &group),
                          OpStatus::Ok);
                all.insert(all.end(), group.reports.begin(),
                           group.reports.end());
            }
            ReportGroup tail;
            ASSERT_EQ(service.close(fx.names[tenant], s, &tail),
                      OpStatus::Ok);
            all.insert(all.end(), tail.reports.begin(),
                       tail.reports.end());
            digests[s] = sortedDigest(std::move(all));
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (size_t s = 0; s < kThreads; ++s) {
        const size_t tenant = s % fx.names.size();
        EXPECT_EQ(digests[s],
                  fx.wholeInputDigest(tenant, fx.inputs[tenant]))
            << "stream " << s;
    }
    EXPECT_EQ(service.openStreamCount(), 0u);
    EXPECT_EQ(service.stats().parkedBytes, 0u);
}
