/** @file Tests for prediction metrics, Fig. 8 and Fig. 5 statistics. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/metrics.h"
#include "regex/glushkov.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

TEST(PredictionMetrics, ConfusionMatrix)
{
    //            predicted: 1 1 0 0 1
    //            reference: 1 0 0 1 1
    PredictionMetrics m = comparePrediction(
        {true, true, false, false, true},
        {true, false, false, true, true});
    EXPECT_EQ(m.tp, 2u);
    EXPECT_EQ(m.fp, 1u);
    EXPECT_EQ(m.tn, 1u);
    EXPECT_EQ(m.fn, 1u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.6);
    EXPECT_DOUBLE_EQ(m.recall(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.precision(), 2.0 / 3.0);
}

TEST(PredictionMetrics, DegenerateCases)
{
    PredictionMetrics all_cold =
        comparePrediction({false, false}, {false, false});
    EXPECT_DOUBLE_EQ(all_cold.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(all_cold.recall(), 1.0);    // no positives to find
    EXPECT_DOUBLE_EQ(all_cold.precision(), 1.0); // no positive claims

    PredictionMetrics empty = comparePrediction({}, {});
    EXPECT_EQ(empty.total(), 0u);
    EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
}

TEST(ConstrainedStates, PerfectChainHasNoConstraint)
{
    // A chain where hot = a prefix exactly matches a layer cut: zero
    // constrained states.
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    AppTopology topo(app);
    HotColdProfile oracle;
    oracle.hot = {true, true, false, false};
    ConstrainedStats s = constrainedStates(topo, oracle);
    EXPECT_EQ(s.topoConfigured, 2u);
    EXPECT_EQ(s.oracleHot, 2u);
    EXPECT_DOUBLE_EQ(s.constrainedFraction(), 0.0);
}

TEST(ConstrainedStates, WideLayerForcesColdSiblings)
{
    // (a|b)c : if only 'a' and 'c' are hot, 'b' (layer 1, cold) is still
    // configured because the cut is at layer >= 2.
    Application app("a", "A");
    app.addNfa(compileRegex("(a|b)c", "p"));
    AppTopology topo(app);
    HotColdProfile oracle;
    oracle.hot = {true, false, true};
    ConstrainedStats s = constrainedStates(topo, oracle);
    EXPECT_EQ(s.topoConfigured, 3u);
    EXPECT_EQ(s.oracleHot, 2u);
    EXPECT_NEAR(s.constrainedFraction(), 1.0 / 3.0, 1e-12);
}

TEST(ConstrainedStates, SccForcesWholeComponent)
{
    // a(bc)+d : the (bc)+ loop is one SCC. If only 'b' is hot inside it,
    // 'c' is constrained along.
    Application app("a", "A");
    app.addNfa(compileRegex("a(bc)+d", "p"));
    AppTopology topo(app);
    HotColdProfile oracle;
    oracle.hot = {true, true, false, false}; // a, b hot; c, d cold
    ConstrainedStats s = constrainedStates(topo, oracle);
    EXPECT_EQ(s.topoConfigured, 3u); // a + the whole {b, c} SCC
    EXPECT_EQ(s.oracleHot, 2u);
}

/** Property: configured >= hot, and fraction in [0, 1]. */
TEST(ConstrainedStates, PropertyBounds)
{
    Rng rng(31);
    for (int trial = 0; trial < 30; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.4;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(3), params);
        AppTopology topo(app);
        HotColdProfile oracle;
        oracle.hot.resize(app.totalStates());
        // Random hotness, but keep start states hot (they always are).
        for (size_t i = 0; i < oracle.hot.size(); ++i)
            oracle.hot[i] = rng.chance(0.4);
        for (uint32_t u = 0; u < app.nfaCount(); ++u)
            for (StateId s : app.nfa(u).startStates())
                oracle.hot[app.nfaOffset(u) + s] = true;

        ConstrainedStats s = constrainedStates(topo, oracle);
        EXPECT_GE(s.topoConfigured, s.oracleHot);
        EXPECT_LE(s.topoConfigured, s.total);
        EXPECT_GE(s.constrainedFraction(), 0.0);
        EXPECT_LE(s.constrainedFraction(), 1.0);
    }
}

TEST(DepthDistribution, BucketsSumToOne)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcdefghij", "p")); // 10 layers
    AppTopology topo(app);
    HotColdProfile prof;
    prof.hot = {true,  true,  true,  false, false,
                false, false, false, false, false};
    DepthDistribution d = depthDistribution(topo, prof);
    EXPECT_EQ(d.hotCount, 3u);
    EXPECT_EQ(d.coldCount, 7u);
    EXPECT_NEAR(d.hot[0] + d.hot[1] + d.hot[2], 1.0, 1e-12);
    EXPECT_NEAR(d.cold[0] + d.cold[1] + d.cold[2], 1.0, 1e-12);
    // Hot states are shallow; cold states skew deep.
    EXPECT_GT(d.hot[0], 0.5);
    EXPECT_GT(d.cold[2], 0.4);
    // Deeper should correlate negatively with hot.
    EXPECT_LT(d.depthHotCorrelation, 0.0);
}

} // namespace
} // namespace sparseap
