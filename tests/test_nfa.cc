/** @file Tests for the homogeneous NFA model. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nfa/nfa.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

Nfa
tinyNfa()
{
    Nfa nfa("tiny");
    StateId a = nfa.addState(SymbolSet::single('a'), StartKind::AllInput);
    StateId b = nfa.addState(SymbolSet::single('b'));
    StateId c = nfa.addState(SymbolSet::single('c'), StartKind::None, true);
    nfa.addEdge(a, b);
    nfa.addEdge(b, c);
    nfa.finalize();
    return nfa;
}

TEST(Nfa, BuildAndQuery)
{
    Nfa nfa = tinyNfa();
    EXPECT_EQ(nfa.size(), 3u);
    EXPECT_TRUE(nfa.finalized());
    EXPECT_EQ(nfa.startStates().size(), 1u);
    EXPECT_EQ(nfa.startStates()[0], 0u);
    EXPECT_EQ(nfa.reportingCount(), 1u);
    EXPECT_EQ(nfa.state(0).successors, std::vector<StateId>{1});
}

TEST(Nfa, DuplicateEdgesMerged)
{
    Nfa nfa("dup");
    StateId a = nfa.addState(SymbolSet::all(), StartKind::AllInput);
    StateId b = nfa.addState(SymbolSet::all());
    nfa.addEdge(a, b);
    nfa.addEdge(a, b);
    nfa.addEdge(a, b);
    nfa.finalize();
    EXPECT_EQ(nfa.state(a).successors.size(), 1u);
}

TEST(Nfa, SuccessorsSorted)
{
    Nfa nfa("sorted");
    StateId a = nfa.addState(SymbolSet::all(), StartKind::AllInput);
    StateId b = nfa.addState(SymbolSet::all());
    StateId c = nfa.addState(SymbolSet::all());
    nfa.addEdge(a, c);
    nfa.addEdge(a, b);
    nfa.finalize();
    EXPECT_EQ(nfa.state(a).successors, (std::vector<StateId>{b, c}));
}

TEST(Nfa, SelfLoopAllowed)
{
    Nfa nfa("loop");
    StateId a = nfa.addState(SymbolSet::all(), StartKind::AllInput);
    nfa.addEdge(a, a);
    nfa.finalize();
    EXPECT_EQ(nfa.state(a).successors, std::vector<StateId>{a});
}

TEST(Nfa, NoStartStateDies)
{
    Nfa nfa("nostart");
    nfa.addState(SymbolSet::all());
    EXPECT_EXIT(nfa.finalize(), ::testing::ExitedWithCode(1),
                "no start state");
}

TEST(Nfa, NoStartAllowedWhenRequested)
{
    Nfa nfa("coldfrag");
    nfa.addState(SymbolSet::all());
    nfa.finalize(/*require_start=*/false);
    EXPECT_TRUE(nfa.finalized());
    EXPECT_TRUE(nfa.startStates().empty());
}

TEST(Nfa, PredecessorsInvertSuccessors)
{
    Nfa nfa = tinyNfa();
    auto pred = nfa.predecessors();
    EXPECT_TRUE(pred[0].empty());
    EXPECT_EQ(pred[1], std::vector<StateId>{0});
    EXPECT_EQ(pred[2], std::vector<StateId>{1});
}

/** Property: predecessors() is the exact inverse of adjacency. */
TEST(Nfa, PropertyPredecessorInverse)
{
    Rng rng(5);
    for (int trial = 0; trial < 30; ++trial) {
        Nfa nfa = testing::randomNfa(rng, {});
        auto pred = nfa.predecessors();
        size_t forward = 0, backward = 0;
        for (StateId u = 0; u < nfa.size(); ++u) {
            forward += nfa.state(u).successors.size();
            backward += pred[u].size();
            for (StateId v : nfa.state(u).successors) {
                EXPECT_NE(std::find(pred[v].begin(), pred[v].end(), u),
                          pred[v].end());
            }
        }
        EXPECT_EQ(forward, backward);
    }
}

} // namespace
} // namespace sparseap
