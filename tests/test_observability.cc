/**
 * @file
 * Unit tests for the observability building blocks: bounded-cardinality
 * labeled families (cap + `other` fold, recency order, LabeledGauge),
 * the structured JSON event log (sink filtering, payload rendering),
 * the slow-request capture ring, request-scoped span trees, and the
 * Prometheus text exposition (label re-emission, atomic file export).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "telemetry/event_log.h"
#include "telemetry/exposition.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/request_trace.h"
#include "telemetry/trace.h"

using namespace sparseap;
using namespace sparseap::telemetry;

namespace {

std::string
tempPath(const char *tag)
{
    return std::string("/tmp/sparseap-test-obs-") + tag + "." +
           std::to_string(::getpid());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

uint64_t
counterValue(const Snapshot &s, const std::string &name)
{
    auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
}

} // namespace

// ------------------------------------------------------ labeled names --

TEST(Labels, NameRoundTrips)
{
    const std::string name = labeledName("serve.feeds", "EM");
    EXPECT_EQ(name, "serve.feeds{tenant=EM}");
    std::string base, label;
    ASSERT_TRUE(splitLabeledName(name, &base, &label));
    EXPECT_EQ(base, "serve.feeds");
    EXPECT_EQ(label, "EM");

    EXPECT_FALSE(splitLabeledName("serve.feeds", nullptr, nullptr));
    EXPECT_FALSE(splitLabeledName("", nullptr, nullptr));
}

TEST(Labels, CounterFamilyCapsAndFoldsIntoOther)
{
    const Snapshot before = snapshot();
    LabeledCounter fam("test.obslab.cnt", 2);
    fam.add("a", 1);
    fam.add("b", 2);
    fam.add("c", 3); // beyond cap -> other
    fam.add("d", 4); // beyond cap -> other
    fam.add("a", 10);
    EXPECT_EQ(fam.seriesCount(), 2u);

    const Snapshot after = snapshot();
    EXPECT_EQ(counterValue(after, "test.obslab.cnt{tenant=a}"), 11u);
    EXPECT_EQ(counterValue(after, "test.obslab.cnt{tenant=b}"), 2u);
    EXPECT_EQ(counterValue(after, "test.obslab.cnt{tenant=other}"), 7u);
    // Each fold bumped the shared overflow counter.
    EXPECT_EQ(counterValue(after, "telemetry.label_overflow"),
              counterValue(before, "telemetry.label_overflow") + 2);
}

TEST(Labels, ExplicitOtherNeverGetsItsOwnSeries)
{
    LabeledCounter fam("test.obslab.explicit", 8);
    fam.add(kOtherLabel, 5);
    EXPECT_EQ(fam.seriesCount(), 0u);
    const Snapshot s = snapshot();
    EXPECT_EQ(counterValue(s, "test.obslab.explicit{tenant=other}"),
              5u);
}

TEST(Labels, RecencyOrderTracksLastUse)
{
    LabeledCounter fam("test.obslab.recency", 8);
    fam.add("a", 1);
    fam.add("b", 1);
    fam.add("c", 1);
    fam.add("a", 1); // touch a again
    const std::vector<std::string> order = fam.labelsByRecency();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "a");
    EXPECT_EQ(order[1], "c");
    EXPECT_EQ(order[2], "b");
}

TEST(Labels, GaugeFamilySetSemanticsAndCap)
{
    LabeledGauge fam("test.obslab.gauge", 2);
    fam.set("a", 5);
    fam.set("b", 7);
    fam.set("c", 9);  // beyond cap -> other (last write wins)
    fam.set("c", 11);
    fam.set("a", 6);  // levels overwrite, never accumulate
    EXPECT_EQ(fam.seriesCount(), 2u);

    const Snapshot s = snapshot();
    EXPECT_EQ(s.gauges.at("test.obslab.gauge{tenant=a}"), 6);
    EXPECT_EQ(s.gauges.at("test.obslab.gauge{tenant=b}"), 7);
    EXPECT_EQ(s.gauges.at("test.obslab.gauge{tenant=other}"), 11);
}

// ---------------------------------------------------------- event log --

TEST(EventLog, WritesOneJsonObjectPerEvent)
{
    const std::string path = tempPath("log");
    initEventLog(path, LogLevel::Debug);
    EXPECT_TRUE(eventLogEnabled(LogLevel::Debug));
    LogEvent(LogLevel::Info, "test.event")
        .str("who", "acme")
        .num("n", 42);
    LogEvent(LogLevel::Warn, "test.warned").str("quote", "a\"b");
    closeEventLog();

    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"level\":\"info\""), std::string::npos);
    EXPECT_NE(text.find("\"event\":\"test.event\""), std::string::npos);
    EXPECT_NE(text.find("\"who\":\"acme\""), std::string::npos);
    EXPECT_NE(text.find("\"n\":42"), std::string::npos);
    EXPECT_NE(text.find("\"ts_us\":"), std::string::npos);
    // JSON string values escape quotes.
    EXPECT_NE(text.find("\"quote\":\"a\\\"b\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(EventLog, SinkLevelFiltersLowerLevels)
{
    const std::string path = tempPath("loglevel");
    initEventLog(path, LogLevel::Warn);
    EXPECT_FALSE(eventLogEnabled(LogLevel::Info));
    EXPECT_TRUE(eventLogEnabled(LogLevel::Error));
    LogEvent(LogLevel::Info, "test.dropped");
    LogEvent(LogLevel::Error, "test.kept");
    closeEventLog();

    const std::string text = slurp(path);
    EXPECT_EQ(text.find("test.dropped"), std::string::npos);
    EXPECT_NE(text.find("test.kept"), std::string::npos);
    std::remove(path.c_str());
}

TEST(EventLog, ParsesLevelNames)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("debug", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("error", &level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_FALSE(parseLogLevel("loud", &level));
    EXPECT_EQ(level, LogLevel::Error); // untouched on garbage
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
}

// --------------------------------------------------- slow-request ring --

TEST(SlowRequestRing, BoundedOldestFirstWithLifetimeTotal)
{
    SlowRequestRing &ring = SlowRequestRing::instance();
    ring.clear();
    const size_t pushed = SlowRequestRing::kCapacity + 8;
    for (size_t i = 1; i <= pushed; ++i) {
        CapturedRequest req;
        req.requestId = i;
        req.spans.push_back({"serve.request", 0, 1, 0});
        ring.capture(std::move(req));
    }
    EXPECT_EQ(ring.totalCaptured(), pushed);
    const std::vector<CapturedRequest> kept = ring.captured();
    ASSERT_EQ(kept.size(), SlowRequestRing::kCapacity);
    // Oldest retained first: ids 9 .. pushed.
    EXPECT_EQ(kept.front().requestId, 9u);
    EXPECT_EQ(kept.back().requestId, pushed);
    ring.clear();
    EXPECT_TRUE(ring.captured().empty());
    EXPECT_EQ(ring.totalCaptured(), 0u);
}

TEST(SlowRequestRing, WriteJsonMatchesDumpSchema)
{
    SlowRequestRing &ring = SlowRequestRing::instance();
    ring.clear();
    CapturedRequest req;
    req.requestId = 7;
    req.tenant = "acme";
    req.op = "Feed";
    req.latencyMicros = 1234;
    req.spans.push_back({"serve.request", 100, 1234, 0});
    req.spans.push_back({"session.feed", 150, 1000, 1});
    ring.capture(std::move(req));

    std::ostringstream os;
    ring.writeJson(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"record\":\"slow_requests\""),
              std::string::npos);
    EXPECT_NE(text.find("\"captured_total\":1"), std::string::npos);
    EXPECT_NE(text.find("\"request_id\":7"), std::string::npos);
    EXPECT_NE(text.find("\"tenant\":\"acme\""), std::string::npos);
    EXPECT_NE(text.find("\"op\":\"Feed\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"session.feed\""),
              std::string::npos);
    EXPECT_NE(text.find("\"depth\":1"), std::string::npos);
    ring.clear();
}

// ------------------------------------------------------ request traces --

TEST(RequestTrace, ScopesBuildADepthTaggedTreeUnderTheRoot)
{
    SlowRequestRing &ring = SlowRequestRing::instance();
    ring.clear();

    const uint64_t t0 = nowMicros();
    {
        RequestTrace trace(99, "acme", "Feed");
        EXPECT_EQ(RequestTrace::current(), &trace);
        trace.addSpan("serve.admission", t0, 5);
        {
            RequestSpanScope outer("serve.execute");
            RequestSpanScope inner("session.feed");
        }
        // Let the root outgrow the 5 us pre-timed admission span so
        // the containment assertions below are meaningful.
        while (nowMicros() - t0 < 50) {
        }
        // Threshold 1 us: everything is "slow", so the tree lands in
        // the ring.
        const uint64_t latency = trace.finish(t0, 1);
        EXPECT_GE(latency, 1u);
    }
    EXPECT_EQ(RequestTrace::current(), nullptr);

    const std::vector<CapturedRequest> kept = ring.captured();
    ASSERT_EQ(kept.size(), 1u);
    const CapturedRequest &cap = kept[0];
    EXPECT_EQ(cap.requestId, 99u);
    EXPECT_EQ(cap.tenant, "acme");
    EXPECT_EQ(cap.op, "Feed");

    ASSERT_GE(cap.spans.size(), 4u);
    EXPECT_STREQ(cap.spans[0].name, "serve.request");
    EXPECT_EQ(cap.spans[0].depth, 0u);
    uint32_t admission_depth = 99, outer_depth = 99, inner_depth = 99;
    for (const RequestSpanRecord &span : cap.spans) {
        const std::string name = span.name;
        if (name == "serve.admission")
            admission_depth = span.depth;
        else if (name == "serve.execute")
            outer_depth = span.depth;
        else if (name == "session.feed")
            inner_depth = span.depth;
        // Every span lies inside the root.
        EXPECT_GE(span.t0_us, cap.spans[0].t0_us) << name;
        EXPECT_LE(span.t0_us + span.dur_us,
                  cap.spans[0].t0_us + cap.spans[0].dur_us)
            << name;
    }
    EXPECT_EQ(admission_depth, 1u);
    EXPECT_EQ(outer_depth, 1u);
    EXPECT_EQ(inner_depth, 2u);
    ring.clear();
}

TEST(RequestTrace, FastRequestsAreNotCaptured)
{
    SlowRequestRing &ring = SlowRequestRing::instance();
    ring.clear();
    const uint64_t t0 = nowMicros();
    {
        RequestTrace trace(1, "", "Ping");
        // Threshold 0 disables capture entirely.
        trace.finish(t0, 0);
    }
    {
        RequestTrace trace(2, "", "Ping");
        // A huge threshold is never met by an immediate finish.
        trace.finish(nowMicros(), 60ull * 1000 * 1000);
    }
    EXPECT_TRUE(ring.captured().empty());
}

TEST(RequestTrace, SpanScopeIsANoOpWithoutAnInstalledTrace)
{
    ASSERT_EQ(RequestTrace::current(), nullptr);
    RequestSpanScope scope("orphan"); // must not crash or record
}

// ----------------------------------------------------------- exposition --

TEST(Exposition, ManglesNamesIntoThePrometheusCharset)
{
    EXPECT_EQ(prometheusName("serve.fed_bytes"),
              "sparseap_serve_fed_bytes");
    EXPECT_EQ(prometheusName("a-b c"), "sparseap_a_b_c");
}

TEST(Exposition, ReEmitsLabeledSeriesWithProperLabelSets)
{
    Snapshot s;
    s.counters["serve.feeds"] = 3;
    s.counters["serve.feeds{tenant=EM}"] = 2;
    s.gauges["serve.queue_depth"] = 4;
    s.gauges["serve.parked_bytes{tenant=EM}"] = 1024;
    Snapshot::Hist h;
    h.count = 1;
    h.sum = 4;
    h.buckets[Histogram::bucketOf(4)] = 1;
    s.histograms["serve.request_micros{tenant=EM}"] = h;

    std::ostringstream os;
    writePrometheus(os, s);
    const std::string text = os.str();

    EXPECT_NE(text.find("# TYPE sparseap_serve_feeds counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("sparseap_serve_feeds 3\n"), std::string::npos);
    EXPECT_NE(text.find("sparseap_serve_feeds{tenant=\"EM\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("sparseap_serve_queue_depth 4\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("sparseap_serve_parked_bytes{tenant=\"EM\"} 1024\n"),
        std::string::npos);
    EXPECT_NE(text.find("sparseap_serve_request_micros{tenant=\"EM\","
                        "quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(
        text.find("sparseap_serve_request_micros_sum{tenant=\"EM\"} 4"),
        std::string::npos);
    EXPECT_NE(text.find(
                  "sparseap_serve_request_micros_count{tenant=\"EM\"} 1"),
              std::string::npos);
    // No mangled-brace artifacts anywhere.
    EXPECT_EQ(text.find("_tenant_"), std::string::npos);
}

TEST(Exposition, FileExportIsAtomicAndReadable)
{
    Snapshot s;
    s.counters["serve.requests"] = 9;
    const std::string path = tempPath("prom");
    ASSERT_TRUE(writePrometheusFile(path, s));
    const std::string text = slurp(path);
    EXPECT_NE(text.find("sparseap_serve_requests 9"),
              std::string::npos);
    // No leftover temp file from the rename.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());

    EXPECT_FALSE(
        writePrometheusFile("/nonexistent-dir/metrics.prom", s));
}
