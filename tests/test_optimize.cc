/** @file Tests for common-prefix merging. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nfa/optimize.h"
#include "regex/glushkov.h"
#include "sim/engine.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

TEST(Optimize, MergesSharedLiteralPrefix)
{
    // Two rules sharing "abc": flattened, the prefix collapses.
    Application app("t", "T");
    app.addNfa(compileRegex("abcX", "r1"));
    app.addNfa(compileRegex("abcY", "r2"));
    OptimizeStats stats = measurePrefixMerging(app);
    EXPECT_EQ(stats.statesBefore, 8u);
    // a, b, c shared; X and Y distinct reporting: 5 states.
    EXPECT_EQ(stats.statesAfter, 5u);
    EXPECT_NEAR(stats.reduction(), 3.0 / 8.0, 1e-12);
}

TEST(Optimize, NeverMergesReportingStates)
{
    Application app("t", "T");
    app.addNfa(compileRegex("ab", "r1"));
    app.addNfa(compileRegex("ab", "r2")); // identical rule
    OptimizeStats stats = measurePrefixMerging(app);
    // 'a' states merge; the two reporting 'b' states must not.
    EXPECT_EQ(stats.statesAfter, 3u);
}

TEST(Optimize, NoFalseMergeOnDifferentPredecessors)
{
    // xb and yb: the two 'b' states have different predecessors and are
    // enabled on different cycles; they must not merge.
    Application app("t", "T");
    Nfa nfa("g");
    StateId x = nfa.addState(SymbolSet::single('x'), StartKind::AllInput);
    StateId y = nfa.addState(SymbolSet::single('y'), StartKind::AllInput);
    StateId b1 = nfa.addState(SymbolSet::single('b'));
    StateId b2 = nfa.addState(SymbolSet::single('b'));
    StateId r1 = nfa.addState(SymbolSet::single('1'), StartKind::None,
                              true);
    StateId r2 = nfa.addState(SymbolSet::single('2'), StartKind::None,
                              true);
    nfa.addEdge(x, b1);
    nfa.addEdge(y, b2);
    nfa.addEdge(b1, r1);
    nfa.addEdge(b2, r2);
    nfa.finalize();

    OptimizeStats stats = mergeCommonPrefixes(nfa);
    EXPECT_EQ(stats.statesAfter, stats.statesBefore);
}

TEST(Optimize, IdempotentAtFixpoint)
{
    Application app("t", "T");
    app.addNfa(compileRegex("GET /a", "r1"));
    app.addNfa(compileRegex("GET /b", "r2"));
    app.addNfa(compileRegex("GET /c", "r3"));
    Nfa flat = flattenApplication(app);
    OptimizeStats first = mergeCommonPrefixes(flat);
    OptimizeStats second = mergeCommonPrefixes(flat);
    EXPECT_LT(first.statesAfter, first.statesBefore);
    EXPECT_EQ(second.statesAfter, second.statesBefore);
}

TEST(Optimize, RemapTracksMergedIds)
{
    Application app("t", "T");
    app.addNfa(compileRegex("abX|abY", "r"));
    Nfa flat = flattenApplication(app);
    std::vector<StateId> remap;
    mergeCommonPrefixes(flat, &remap);
    ASSERT_EQ(remap.size(), 6u);
    // Position order is a,b,X,a,b,Y: both 'a' positions share one id,
    // as do both 'b' positions.
    EXPECT_EQ(remap[0], remap[3]);
    EXPECT_EQ(remap[1], remap[4]);
    EXPECT_NE(remap[2], remap[5]); // reporting states stay distinct
    for (StateId id : remap)
        EXPECT_LT(id, flat.size());
}

/**
 * Property: merging preserves the report stream exactly, up to the id
 * remapping.
 */
TEST(Optimize, PropertyReportsPreserved)
{
    Rng rng(777);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.universalProb = 0.1;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(3), params);
        std::vector<uint8_t> input = testing::randomInput(rng, 200, 16);

        Nfa flat = flattenApplication(app);
        Application flat_app("flat", "F");
        {
            Nfa copy = flat; // keep the unmerged flat automaton
            flat_app.addNfa(std::move(copy));
        }
        FlatAutomaton fa_before(flat_app);
        Engine before(fa_before);
        ReportList want = before.run(input).reports;

        std::vector<StateId> remap;
        mergeCommonPrefixes(flat, &remap);
        Application merged_app("merged", "M");
        merged_app.addNfa(std::move(flat));
        FlatAutomaton fa_after(merged_app);
        Engine after(fa_after);
        ReportList got = after.run(input).reports;

        // Remap the reference reports into merged ids and compare.
        for (Report &r : want)
            r.state = remap[r.state];
        std::sort(want.begin(), want.end());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want) << "trial " << trial;
    }
}

TEST(Optimize, FlattenPreservesExecution)
{
    Rng rng(778);
    Application app = testing::randomApplication(rng, 4);
    std::vector<uint8_t> input = testing::randomInput(rng, 150, 16);

    ReportList direct = testing::naiveSimulate(app, input);

    Application flat_app("flat", "F");
    flat_app.addNfa(flattenApplication(app));
    FlatAutomaton fa(flat_app);
    Engine engine(fa);
    ReportList flat = engine.run(input).reports;
    std::sort(flat.begin(), flat.end());
    EXPECT_EQ(flat, direct); // global ids coincide by construction
}

} // namespace
} // namespace sparseap
