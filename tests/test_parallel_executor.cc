/**
 * @file
 * Executor-under-parallelism tests: running the BaseAP/SpAP pipeline
 * with 1 and 4 jobs must produce byte-identical report streams and
 * identical Table-IV statistics — the merge is deterministic by batch
 * order, so the thread count is invisible in all output. This is also
 * the test the TSan build (-DSPARSEAP_SANITIZE=thread) exercises for
 * data races.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "spap/executor.h"
#include "workloads/inputs.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

/** All Table-IV fields of two runs must match exactly. */
void
expectIdenticalStats(const SpapRunStats &a, const SpapRunStats &b,
                     const std::string &label)
{
    EXPECT_EQ(a.baselineBatches, b.baselineBatches) << label;
    EXPECT_EQ(a.baseApBatches, b.baseApBatches) << label;
    EXPECT_EQ(a.spApBatches, b.spApBatches) << label;
    EXPECT_EQ(a.spApConfiguredBatches, b.spApConfiguredBatches) << label;
    EXPECT_EQ(a.testLength, b.testLength) << label;
    EXPECT_EQ(a.baselineCycles, b.baselineCycles) << label;
    EXPECT_EQ(a.baseApCycles, b.baseApCycles) << label;
    EXPECT_EQ(a.spApCycles, b.spApCycles) << label;
    EXPECT_EQ(a.spApConsumedCycles, b.spApConsumedCycles) << label;
    EXPECT_EQ(a.enableStalls, b.enableStalls) << label;
    EXPECT_EQ(a.jumps, b.jumps) << label;
    EXPECT_EQ(a.enables, b.enables) << label;
    EXPECT_EQ(a.skippedSymbols, b.skippedSymbols) << label;
    EXPECT_EQ(a.totalStates, b.totalStates) << label;
    EXPECT_EQ(a.baseApStates, b.baseApStates) << label;
    EXPECT_EQ(a.intermediateStates, b.intermediateStates) << label;
    EXPECT_EQ(a.intermediateReports, b.intermediateReports) << label;
    EXPECT_DOUBLE_EQ(a.resourceSavings, b.resourceSavings) << label;
    EXPECT_DOUBLE_EQ(a.jumpRatio, b.jumpRatio) << label;
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup) << label;
    // Byte-identical report streams, not just equal multisets.
    ASSERT_EQ(a.reports.size(), b.reports.size()) << label;
    for (size_t i = 0; i < a.reports.size(); ++i) {
        ASSERT_EQ(a.reports[i], b.reports[i])
            << label << " report " << i;
    }
}

TEST(ParallelExecutor, JobsCountInvisibleOnRegisteredApps)
{
    // Three H/M apps with distinct structure (ClamAV chains, Snort
    // regexes, PowerEN rules), generated at test scale.
    const char *apps[] = {"CAV", "Snort", "PEN"};
    size_t spap_batches_total = 0;

    for (const char *abbr : apps) {
        Workload w = generateWorkload(abbr, 11, 5);
        Rng rng(991);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, 8192, rng);
        AppTopology topo(w.app);

        ExecutionOptions opts;
        // Small capacity relative to the scaled app so the cold set
        // spans several SpAP batches — the code path being parallelized.
        opts.ap.capacity = std::max<size_t>(w.app.totalStates() / 6, 64);
        opts.profileFraction = 0.001;
        opts.fullInputAsTest = w.fullInputAsTest;

        const PreparedPartition prep =
            preparePartition(topo, opts, input);

        opts.jobs = 1;
        const SpapRunStats serial =
            runBaseApSpap(topo, opts, prep, /*collect_reports=*/true);
        opts.jobs = 4;
        const SpapRunStats parallel =
            runBaseApSpap(topo, opts, prep, /*collect_reports=*/true);

        expectIdenticalStats(serial, parallel, abbr);
        spap_batches_total += serial.spApBatches;
    }
    // The comparison is only meaningful if SpAP mode actually ran.
    EXPECT_GT(spap_batches_total, 0u);
}

TEST(ParallelExecutor, RepeatedParallelRunsAreStable)
{
    Workload w = generateWorkload("Brill", 3, 5);
    Rng rng(17);
    const std::vector<uint8_t> input = synthesizeInput(w.input, 4096, rng);
    AppTopology topo(w.app);

    ExecutionOptions opts;
    opts.ap.capacity = std::max<size_t>(w.app.totalStates() / 5, 64);
    opts.profileFraction = 0.001;
    const PreparedPartition prep = preparePartition(topo, opts, input);

    opts.jobs = 4;
    const SpapRunStats first = runBaseApSpap(topo, opts, prep, true);
    for (int round = 0; round < 3; ++round) {
        const SpapRunStats again = runBaseApSpap(topo, opts, prep, true);
        expectIdenticalStats(first, again,
                             "round " + std::to_string(round));
    }
}

} // namespace
} // namespace sparseap
