/** @file Tests for layer-cut partitioning and intermediate states. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/partitioner.h"
#include "regex/glushkov.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

TEST(Partitioner, ChainCutInTheMiddle)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p")); // layers 1..4
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {2};
    PartitionedApp part = partitionApplication(topo, layers);

    // Hot: a, b + one intermediate clone of c. Cold: c, d.
    EXPECT_EQ(part.hot.totalStates(), 3u);
    EXPECT_EQ(part.intermediateCount, 1u);
    EXPECT_EQ(part.cold.totalStates(), 2u);
    EXPECT_EQ(part.cold.nfaCount(), 1u);

    // The intermediate state clones 'c' and reports.
    const Nfa &hot = part.hot.nfa(0);
    const StateId inter = 2;
    EXPECT_TRUE(hot.state(inter).reporting);
    EXPECT_TRUE(hot.state(inter).symbols.test('c'));
    EXPECT_TRUE(hot.state(inter).successors.empty());
    EXPECT_EQ(part.intermediateTarget[inter], 2u); // original gid of 'c'

    // Cold mapping round-trips.
    EXPECT_EQ(part.coldToOriginal[0], 2u);
    EXPECT_EQ(part.coldToOriginal[1], 3u);
    EXPECT_EQ(part.originalToCold[2], 0u);
    EXPECT_EQ(part.originalToCold[3], 1u);
    EXPECT_EQ(part.originalToCold[0], kInvalidGlobal);
}

TEST(Partitioner, FullyHotNfaHasNoColdFragment)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "p"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {2};
    PartitionedApp part = partitionApplication(topo, layers);
    EXPECT_EQ(part.hot.totalStates(), 2u);
    EXPECT_EQ(part.intermediateCount, 0u);
    EXPECT_EQ(part.cold.nfaCount(), 0u);
    EXPECT_DOUBLE_EQ(part.resourceSavings(2), 0.0);
}

TEST(Partitioner, PerEdgeVsDedupedIntermediates)
{
    // Two hot predecessors of one cold state: (a|b)c with cut at layer 1.
    Application app("a", "A");
    app.addNfa(compileRegex("(a|b)c", "p"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {1};

    PartitionOptions per_edge;
    per_edge.dedupeIntermediates = false;
    PartitionedApp p1 = partitionApplication(topo, layers, per_edge);
    EXPECT_EQ(p1.intermediateCount, 2u); // one per cut edge (the paper)

    PartitionOptions dedup;
    dedup.dedupeIntermediates = true;
    PartitionedApp p2 = partitionApplication(topo, layers, dedup);
    EXPECT_EQ(p2.intermediateCount, 1u); // shared per target
}

TEST(Partitioner, ReportingCountsSplit)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab|xyz", "p"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {2};
    PartitionedApp part = partitionApplication(topo, layers);
    // 'b' (reporting, layer 2) stays hot; 'z' (reporting, layer 3) cold.
    EXPECT_EQ(part.hotOriginalReporting, 1u);
    EXPECT_EQ(part.coldReporting, 1u);
}

TEST(Partitioner, SavingsExcludeIntermediates)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcd", "p"));
    AppTopology topo(app);
    PartitionLayers layers;
    layers.k = {2};
    PartitionedApp part = partitionApplication(topo, layers);
    // 2 of 4 original states stay hot -> savings 50%, regardless of the
    // intermediate clone.
    EXPECT_DOUBLE_EQ(part.resourceSavings(4), 0.5);
}

/**
 * Property: partition invariants on random automata —
 *  - hot/cold fragment sizes sum to the original (plus intermediates),
 *  - no cold state has an edge to a hot state (unidirectionality),
 *  - SCCs are never split,
 *  - intermediate states clone their target's symbol-set, report, and
 *    have no successors,
 *  - id translation tables are mutually consistent.
 */
TEST(Partitioner, PropertyInvariants)
{
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.35;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(4), params);
        AppTopology topo(app);

        PartitionLayers layers;
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            const uint32_t lo =
                testing::minPartitionLayer(app.nfa(u), topo.nfa(u));
            layers.k.push_back(static_cast<uint32_t>(
                rng.uniform(lo, topo.nfa(u).maxOrder)));
        }
        PartitionOptions opts;
        opts.dedupeIntermediates = trial % 2 == 0;
        PartitionedApp part = partitionApplication(topo, layers, opts);

        EXPECT_EQ(part.hot.totalStates() - part.intermediateCount +
                      part.cold.totalStates(),
                  app.totalStates());

        // Hot fragments: originals then intermediates, per NFA.
        ASSERT_EQ(part.hotToOriginal.size(), part.hot.totalStates());
        ASSERT_EQ(part.intermediateTarget.size(), part.hot.totalStates());
        size_t inter_seen = 0;
        for (GlobalStateId h = 0; h < part.hot.totalStates(); ++h) {
            const bool is_inter =
                part.intermediateTarget[h] != kInvalidGlobal;
            EXPECT_EQ(part.hotToOriginal[h] == kInvalidGlobal, is_inter);
            if (is_inter) {
                ++inter_seen;
                const GlobalStateRef hr = part.hot.resolve(h);
                const State &st = part.hot.nfa(hr.nfa).state(hr.state);
                EXPECT_TRUE(st.reporting);
                EXPECT_TRUE(st.successors.empty());
                // Clone of the target's symbol-set; target is cold.
                const GlobalStateId target = part.intermediateTarget[h];
                const GlobalStateRef tr = app.resolve(target);
                EXPECT_EQ(st.symbols,
                          app.nfa(tr.nfa).state(tr.state).symbols);
                EXPECT_NE(part.originalToCold[target], kInvalidGlobal);
            }
        }
        EXPECT_EQ(inter_seen, part.intermediateCount);

        // Cold mapping is a bijection with originalToCold.
        for (GlobalStateId c = 0; c < part.cold.totalStates(); ++c)
            EXPECT_EQ(part.originalToCold[part.coldToOriginal[c]], c);

        // Membership agrees with the layers, and SCCs are atomic.
        for (uint32_t u = 0; u < app.nfaCount(); ++u) {
            const Topology &t = topo.nfa(u);
            const GlobalStateId base = app.nfaOffset(u);
            for (StateId s = 0; s < app.nfa(u).size(); ++s) {
                const bool is_cold =
                    part.originalToCold[base + s] != kInvalidGlobal;
                EXPECT_EQ(is_cold, t.order[s] > layers.k[u]);
            }
            for (const auto &members : t.scc.members) {
                bool any_cold = false, any_hot = false;
                for (StateId s : members) {
                    (part.originalToCold[base + s] != kInvalidGlobal
                         ? any_cold
                         : any_hot) = true;
                }
                EXPECT_FALSE(any_cold && any_hot) << "SCC split";
            }
        }

        // Unidirectionality: cold fragments only have cold-to-cold
        // edges by construction; additionally no hot original edge leads
        // to a cold state (those became intermediates).
        for (uint32_t u = 0; u < part.hot.nfaCount(); ++u) {
            const Nfa &hf = part.hot.nfa(u);
            for (StateId s = 0; s < hf.size(); ++s) {
                const GlobalStateId orig =
                    part.hotToOriginal[part.hot.globalId(u, s)];
                if (orig == kInvalidGlobal)
                    continue;
                for (StateId d : hf.state(s).successors) {
                    const GlobalStateId dorig =
                        part.hotToOriginal[part.hot.globalId(u, d)];
                    if (dorig != kInvalidGlobal) {
                        EXPECT_EQ(part.originalToCold[dorig],
                                  kInvalidGlobal);
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace sparseap
