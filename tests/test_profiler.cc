/** @file Tests for the hot-state profiler. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/engine.h"
#include "sim/profiler.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

TEST(Profiler, StartStatesAlwaysHot)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abc", "p"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    HotStateProfiler prof(fa.size());
    engine.run(bytes("zzzz"), &prof); // nothing matches
    // The single start state ('a' position) is hot; the rest cold.
    EXPECT_EQ(prof.hotCount(), 1u);
}

TEST(Profiler, EnabledMeansHotEvenWithoutActivation)
{
    // 'a' then 'q': after "a", the 'q' state is enabled (hot) even though
    // the input never contains 'q'.
    Application app("a", "A");
    app.addNfa(compileRegex("aq", "p"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    HotStateProfiler prof(fa.size());
    engine.run(bytes("axxx"), &prof);
    EXPECT_EQ(prof.hotCount(), 2u);
}

TEST(Profiler, DeepStatesStayCold)
{
    Application app("a", "A");
    app.addNfa(compileRegex("abcdef", "p"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    HotStateProfiler prof(fa.size());
    engine.run(bytes("abxxabcx"), &prof);
    // Hot: a (start), b (after a), c (after ab), d (after abc). Not e, f.
    EXPECT_EQ(prof.hotCount(), 4u);
    EXPECT_DOUBLE_EQ(prof.hotFraction(), 4.0 / 6.0);
}

TEST(Profiler, AccumulatesAcrossRuns)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "p"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    HotStateProfiler prof(fa.size());
    engine.run(bytes("zz"), &prof);
    EXPECT_EQ(prof.hotCount(), 1u);
    engine.run(bytes("az"), &prof);
    EXPECT_EQ(prof.hotCount(), 2u);
}

TEST(Profiler, StartOfDataStartsMarked)
{
    Application app("a", "A");
    app.addNfa(compileRegex("^xy", "p"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    HotStateProfiler prof(fa.size());
    engine.run(bytes("zz"), &prof);
    EXPECT_EQ(prof.hotCount(), 1u); // the anchored start is still hot
}

/** Property: profiler hot set equals the naive oracle's enabled set. */
TEST(Profiler, PropertyMatchesNaiveHotSet)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        testing::RandomNfaParams params;
        params.sodProb = trial % 2 ? 0.4 : 0.0;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(4), params);
        std::vector<uint8_t> input = testing::randomInput(rng, 150, 32);

        FlatAutomaton fa(app);
        Engine engine(fa);
        HotStateProfiler prof(fa.size());
        engine.run(input, &prof);
        EXPECT_EQ(prof.hotSet(), testing::naiveHotSet(app, input))
            << "trial " << trial;
    }
}

} // namespace
} // namespace sparseap
