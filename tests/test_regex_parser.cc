/** @file Tests for the regex parser and count desugaring. */

#include <gtest/gtest.h>

#include "regex/parser.h"

namespace sparseap {
namespace {

TEST(RegexParser, LiteralChain)
{
    ParsedRegex p = parseRegex("abc");
    EXPECT_FALSE(p.anchored);
    EXPECT_EQ(countPositions(*p.root), 3u);
    EXPECT_EQ(p.root->op, RegexOp::Cat);
}

TEST(RegexParser, Anchor)
{
    EXPECT_TRUE(parseRegex("^abc").anchored);
    EXPECT_FALSE(parseRegex("abc").anchored);
}

TEST(RegexParser, Alternation)
{
    ParsedRegex p = parseRegex("a|b|c");
    EXPECT_EQ(p.root->op, RegexOp::Alt);
    EXPECT_EQ(p.root->children.size(), 3u);
}

TEST(RegexParser, Quantifiers)
{
    EXPECT_EQ(parseRegex("a*").root->op, RegexOp::Star);
    EXPECT_EQ(parseRegex("a+").root->op, RegexOp::Plus);
    EXPECT_EQ(parseRegex("a?").root->op, RegexOp::Opt);
}

TEST(RegexParser, CountsDesugarByCopy)
{
    EXPECT_EQ(countPositions(*parseRegex("a{3}").root), 3u);
    EXPECT_EQ(countPositions(*parseRegex("a{2,5}").root), 5u);
    EXPECT_EQ(countPositions(*parseRegex("a{0,3}").root), 3u);
    EXPECT_EQ(countPositions(*parseRegex("a{3,}").root), 4u); // aaa + a*
    EXPECT_EQ(countPositions(*parseRegex("(ab){2}").root), 4u);
}

TEST(RegexParser, GroupsAndNesting)
{
    ParsedRegex p = parseRegex("a(b|cd)*e");
    EXPECT_EQ(countPositions(*p.root), 5u);
    // Non-capturing group syntax is tolerated.
    EXPECT_EQ(countPositions(*parseRegex("a(?:bc)d").root), 4u);
}

TEST(RegexParser, ClassesAndEscapes)
{
    ParsedRegex p = parseRegex("[a-c]x");
    ASSERT_EQ(p.root->op, RegexOp::Cat);
    const RegexNode &cls = *p.root->children[0];
    EXPECT_EQ(cls.op, RegexOp::Sym);
    EXPECT_EQ(cls.symbols.count(), 3);

    EXPECT_EQ(parseRegex("\\d").root->symbols.count(), 10);
    EXPECT_EQ(parseRegex("\\w").root->symbols.count(), 63);
    EXPECT_EQ(parseRegex("\\s").root->symbols.count(), 6);
    EXPECT_EQ(parseRegex("\\D").root->symbols.count(), 246);
    EXPECT_TRUE(parseRegex("\\x7f").root->symbols.test(0x7f));
    EXPECT_TRUE(parseRegex("\\.").root->symbols.test('.'));
}

TEST(RegexParser, DotIsEveryByte)
{
    EXPECT_EQ(parseRegex(".").root->symbols.count(), 256);
}

TEST(RegexParser, EmptyPatternIsEpsilon)
{
    EXPECT_EQ(parseRegex("").root->op, RegexOp::Epsilon);
    EXPECT_EQ(parseRegex("a|").root->op, RegexOp::Alt);
}

TEST(RegexParser, CloneIsDeep)
{
    ParsedRegex p = parseRegex("a(b|c)+d");
    auto copy = p.root->clone();
    EXPECT_EQ(countPositions(*copy), countPositions(*p.root));
    // Mutating the copy must not affect the original.
    copy->children.clear();
    EXPECT_EQ(countPositions(*p.root), 4u);
}

TEST(RegexParser, SyntaxErrorsDie)
{
    EXPECT_EXIT(parseRegex("a("), ::testing::ExitedWithCode(1), "regex");
    EXPECT_EXIT(parseRegex("a)"), ::testing::ExitedWithCode(1), "regex");
    EXPECT_EXIT(parseRegex("*a"), ::testing::ExitedWithCode(1),
                "quantifier");
    EXPECT_EXIT(parseRegex("a{5,2}"), ::testing::ExitedWithCode(1),
                "bound");
    EXPECT_EXIT(parseRegex("a$"), ::testing::ExitedWithCode(1), "anchor");
    EXPECT_EXIT(parseRegex("a^b"), ::testing::ExitedWithCode(1), "start");
    EXPECT_EXIT(parseRegex("[abc"), ::testing::ExitedWithCode(1),
                "unterminated");
    EXPECT_EXIT(parseRegex("a\\"), ::testing::ExitedWithCode(1),
                "dangling");
    EXPECT_EXIT(parseRegex("a{99999999}"), ::testing::ExitedWithCode(1),
                "count");
    EXPECT_EXIT(parseRegex("(?=a)"), ::testing::ExitedWithCode(1),
                "unsupported");
}

} // namespace
} // namespace sparseap
