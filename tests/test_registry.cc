/** @file Tests for the 26-application catalog. */

#include <set>

#include <gtest/gtest.h>

#include "workloads/registry.h"

namespace sparseap {
namespace {

TEST(Registry, CatalogHas26UniqueApps)
{
    const auto &catalog = appCatalog();
    EXPECT_EQ(catalog.size(), 26u);
    std::set<std::string> abbrs;
    for (const auto &e : catalog)
        abbrs.insert(e.abbr);
    EXPECT_EQ(abbrs.size(), 26u);
}

TEST(Registry, CatalogSortedByStatesDescending)
{
    const auto &catalog = appCatalog();
    for (size_t i = 1; i < catalog.size(); ++i)
        EXPECT_GE(catalog[i - 1].paperStates, catalog[i].paperStates);
}

TEST(Registry, GroupsMatchPaperThresholds)
{
    for (const auto &e : appCatalog()) {
        if (e.paperStates > 49152)
            EXPECT_EQ(e.group, 'H') << e.abbr;
        else if (e.paperStates > 24576)
            EXPECT_EQ(e.group, 'M') << e.abbr;
        else
            EXPECT_EQ(e.group, 'L') << e.abbr;
    }
}

TEST(Registry, FindAppWorksAndUnknownDies)
{
    EXPECT_EQ(findApp("CAV4k").paperStates, 1124947u);
    EXPECT_EXIT(findApp("NOPE"), ::testing::ExitedWithCode(1), "unknown");
}

TEST(Registry, ScaledGenerationKeepsShape)
{
    // 5% scale keeps generation fast; this covers every generator path.
    for (const auto &e : appCatalog()) {
        Workload w = generateWorkload(e.abbr, 1, 5);
        EXPECT_GT(w.app.nfaCount(), 0u) << e.abbr;
        EXPECT_GT(w.app.totalStates(), 0u) << e.abbr;
        EXPECT_GT(w.app.reportingStates(), 0u) << e.abbr;
        EXPECT_EQ(w.app.abbr(), e.abbr);
        // States per NFA should be within 2x of the paper's ratio.
        const double paper_ratio =
            static_cast<double>(e.paperStates) /
            static_cast<double>(e.paperNfas);
        const double ours =
            static_cast<double>(w.app.totalStates()) /
            static_cast<double>(w.app.nfaCount());
        EXPECT_GT(ours, paper_ratio / 2.5) << e.abbr;
        EXPECT_LT(ours, paper_ratio * 2.5) << e.abbr;
        // Start-of-data applications are flagged for full-input testing.
        EXPECT_EQ(w.fullInputAsTest,
                  e.abbr == "SPM" || e.abbr == "Fermi")
            << e.abbr;
    }
}

TEST(Registry, DeterministicUnderSeed)
{
    Workload a = generateWorkload("LV", 7, 100);
    Workload b = generateWorkload("LV", 7, 100);
    EXPECT_EQ(a.app.totalStates(), b.app.totalStates());
    EXPECT_EQ(a.app.nfaCount(), b.app.nfaCount());
    // Spot-check structural equality of the first NFA.
    const Nfa &na = a.app.nfa(0), &nb = b.app.nfa(0);
    ASSERT_EQ(na.size(), nb.size());
    for (StateId s = 0; s < na.size(); ++s) {
        EXPECT_EQ(na.state(s).symbols, nb.state(s).symbols);
        EXPECT_EQ(na.state(s).successors, nb.state(s).successors);
    }

    Workload c = generateWorkload("LV", 8, 100);
    bool differs = c.app.nfa(0).state(0).symbols !=
                   a.app.nfa(0).state(0).symbols;
    for (StateId s = 0; s < std::min(c.app.nfa(0).size(), na.size()); ++s)
        differs = differs ||
                  c.app.nfa(0).state(s).symbols != na.state(s).symbols;
    EXPECT_TRUE(differs);
}

TEST(Registry, SeedsAreIndependentAcrossApps)
{
    // Different apps with the same master seed draw different streams.
    Workload em = generateWorkload("EM", 7, 20);
    Workload rg = generateWorkload("Rg1", 7, 20);
    EXPECT_NE(em.app.totalStates(), 0u);
    bool differs = em.app.nfaCount() != rg.app.nfaCount();
    if (!differs) {
        differs = em.app.nfa(0).state(0).symbols !=
                  rg.app.nfa(0).state(0).symbols;
    }
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace sparseap
