/** @file Tests for strongly-connected-component identification. */

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/scc.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

Nfa
fromEdges(size_t states, std::vector<std::pair<StateId, StateId>> edges)
{
    Nfa nfa("g");
    for (size_t i = 0; i < states; ++i)
        nfa.addState(SymbolSet::all(),
                     i == 0 ? StartKind::AllInput : StartKind::None);
    for (auto [u, v] : edges)
        nfa.addEdge(u, v);
    nfa.finalize();
    return nfa;
}

TEST(Scc, ChainIsAllSingletons)
{
    Nfa nfa = fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
    SccResult scc = findSccs(nfa);
    EXPECT_EQ(scc.count, 4u);
    EXPECT_EQ(scc.largestSize(), 1u);
}

TEST(Scc, SimpleCycle)
{
    Nfa nfa = fromEdges(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
    SccResult scc = findSccs(nfa);
    EXPECT_EQ(scc.count, 3u);
    EXPECT_EQ(scc.component[1], scc.component[2]);
    EXPECT_NE(scc.component[0], scc.component[1]);
    EXPECT_NE(scc.component[3], scc.component[1]);
    EXPECT_EQ(scc.largestSize(), 2u);
}

TEST(Scc, SelfLoopIsItsOwnScc)
{
    Nfa nfa = fromEdges(2, {{0, 0}, {0, 1}});
    SccResult scc = findSccs(nfa);
    EXPECT_EQ(scc.count, 2u);
    EXPECT_EQ(scc.largestSize(), 1u);
}

TEST(Scc, FullCycleIsOneComponent)
{
    Nfa nfa = fromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
    SccResult scc = findSccs(nfa);
    EXPECT_EQ(scc.count, 1u);
    EXPECT_EQ(scc.largestSize(), 5u);
}

TEST(Scc, TwoCyclesBridged)
{
    Nfa nfa = fromEdges(
        6, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 4}, {4, 2}, {4, 5}});
    SccResult scc = findSccs(nfa);
    EXPECT_EQ(scc.count, 3u); // {0,1}, {2,3,4}, {5}
    EXPECT_EQ(scc.component[0], scc.component[1]);
    EXPECT_EQ(scc.component[2], scc.component[3]);
    EXPECT_EQ(scc.component[3], scc.component[4]);
    EXPECT_NE(scc.component[0], scc.component[2]);
}

TEST(Scc, MembersPartitionTheStates)
{
    Rng rng(55);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.4;
        Nfa nfa = testing::randomNfa(rng, params);
        SccResult scc = findSccs(nfa);

        size_t total = 0;
        std::vector<bool> seen(nfa.size(), false);
        for (uint32_t c = 0; c < scc.count; ++c) {
            for (StateId s : scc.members[c]) {
                EXPECT_FALSE(seen[s]);
                seen[s] = true;
                EXPECT_EQ(scc.component[s], c);
                ++total;
            }
        }
        EXPECT_EQ(total, nfa.size());
    }
}

/** Property: condensation has no self-edges and is acyclic. */
TEST(Scc, PropertyCondensationIsDag)
{
    Rng rng(56);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.5;
        params.maxStates = 40;
        Nfa nfa = testing::randomNfa(rng, params);
        SccResult scc = findSccs(nfa);
        Condensation cond = condense(nfa, scc);

        ASSERT_EQ(cond.adj.size(), scc.count);
        // Kahn's algorithm must consume every node.
        std::vector<uint32_t> indeg(scc.count, 0);
        for (uint32_t c = 0; c < scc.count; ++c) {
            for (uint32_t d : cond.adj[c]) {
                EXPECT_NE(c, d) << "self-edge in condensation";
                ++indeg[d];
            }
        }
        std::vector<uint32_t> ready;
        for (uint32_t c = 0; c < scc.count; ++c)
            if (indeg[c] == 0)
                ready.push_back(c);
        size_t done = 0;
        while (done < ready.size()) {
            uint32_t c = ready[done++];
            for (uint32_t d : cond.adj[c])
                if (--indeg[d] == 0)
                    ready.push_back(d);
        }
        EXPECT_EQ(done, scc.count) << "condensation has a cycle";
    }
}

/** Property: mutual reachability within an SCC (checked on small NFAs). */
TEST(Scc, PropertyMutualReachability)
{
    Rng rng(57);
    for (int trial = 0; trial < 20; ++trial) {
        testing::RandomNfaParams params;
        params.minStates = 3;
        params.maxStates = 14;
        params.backEdgeProb = 0.5;
        Nfa nfa = testing::randomNfa(rng, params);
        const size_t n = nfa.size();

        // Floyd-Warshall reachability.
        std::vector<std::vector<bool>> reach(n,
                                             std::vector<bool>(n, false));
        for (StateId u = 0; u < n; ++u)
            for (StateId v : nfa.state(u).successors)
                reach[u][v] = true;
        for (size_t k = 0; k < n; ++k)
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < n; ++j)
                    if (reach[i][k] && reach[k][j])
                        reach[i][j] = reach[i][j] || true;
        // (two passes make the closure exact for this simple loop order)
        for (size_t k = 0; k < n; ++k)
            for (size_t i = 0; i < n; ++i)
                for (size_t j = 0; j < n; ++j)
                    if (reach[i][k] && reach[k][j])
                        reach[i][j] = true;

        SccResult scc = findSccs(nfa);
        for (StateId u = 0; u < n; ++u) {
            for (StateId v = 0; v < n; ++v) {
                if (u == v)
                    continue;
                const bool same = scc.component[u] == scc.component[v];
                const bool mutual = reach[u][v] && reach[v][u];
                EXPECT_EQ(same, mutual)
                    << "states " << u << "," << v << " trial " << trial;
            }
        }
    }
}

} // namespace
} // namespace sparseap
