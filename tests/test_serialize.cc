/** @file Round-trip tests for the text serialization format. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nfa/serialize.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

/** Structural equality of two NFAs. */
void
expectSameNfa(const Nfa &a, const Nfa &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (StateId s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a.state(s).symbols, b.state(s).symbols) << "state " << s;
        EXPECT_EQ(a.state(s).start, b.state(s).start) << "state " << s;
        EXPECT_EQ(a.state(s).reporting, b.state(s).reporting)
            << "state " << s;
        EXPECT_EQ(a.state(s).successors, b.state(s).successors)
            << "state " << s;
    }
}

TEST(Serialize, TinyRoundTrip)
{
    Nfa nfa("t");
    StateId a = nfa.addState(parseSymbolSet("[a-z]"), StartKind::AllInput);
    StateId b = nfa.addState(parseSymbolSet("\\x00"), StartKind::None,
                             true);
    nfa.addEdge(a, b);
    nfa.finalize();

    std::stringstream ss;
    writeNfa(ss, nfa);
    Nfa back = readNfa(ss);
    expectSameNfa(nfa, back);
    EXPECT_EQ(back.name(), "t");
}

TEST(Serialize, ApplicationRoundTrip)
{
    Rng rng(123);
    Application app = testing::randomApplication(rng, 5);
    app.setNames("roundtrip", "RT");

    Application back = applicationFromString(toString(app));
    EXPECT_EQ(back.name(), "roundtrip");
    EXPECT_EQ(back.abbr(), "RT");
    ASSERT_EQ(back.nfaCount(), app.nfaCount());
    ASSERT_EQ(back.totalStates(), app.totalStates());
    for (uint32_t u = 0; u < app.nfaCount(); ++u)
        expectSameNfa(app.nfa(u), back.nfa(u));
}

/** Property: round trip over many random applications. */
TEST(Serialize, PropertyRandomRoundTrip)
{
    Rng rng(124);
    for (int trial = 0; trial < 20; ++trial) {
        testing::RandomNfaParams params;
        params.sodProb = 0.3;
        params.alphabetSize = 256; // exercise all byte values
        Application app = testing::randomApplication(rng, 3, params);
        Application back = applicationFromString(toString(app));
        ASSERT_EQ(back.totalStates(), app.totalStates());
        for (uint32_t u = 0; u < app.nfaCount(); ++u)
            expectSameNfa(app.nfa(u), back.nfa(u));
    }
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    const std::string text =
        "# a comment\n"
        "app demo D\n"
        "\n"
        "nfa one\n"
        "# another comment\n"
        "state 0 all 1 a\n"
        "end\n";
    Application app = applicationFromString(text);
    EXPECT_EQ(app.nfaCount(), 1u);
    EXPECT_TRUE(app.nfa(0).state(0).reporting);
}

TEST(Serialize, MalformedInputDies)
{
    EXPECT_EXIT(applicationFromString("nonsense\n"),
                ::testing::ExitedWithCode(1), "unknown keyword");
    EXPECT_EXIT(
        applicationFromString("app a A\nnfa x\nstate 1 all 0 a\nend\n"),
        ::testing::ExitedWithCode(1), "non-dense");
    EXPECT_EXIT(applicationFromString("app a A\nnfa x\nstate 0 all 0 a\n"),
                ::testing::ExitedWithCode(1), "end of stream");
}

} // namespace
} // namespace sparseap
