/**
 * @file
 * End-to-end observability over a live daemon: an injected-delay feed
 * must land in the slow-request ring *and* the structured event log
 * with the same request id; STATS must carry windowed rates and
 * per-tenant labeled series after two observer samples; --metrics-file
 * style Prometheus export must show the per-tenant series; and with
 * observability off the STATS reply must degrade to the legacy flat
 * counters (no labels, no windows). Plus the wire round-trip of the
 * extended StatsReply, including the legacy-decoder truncation path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/rng.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "telemetry/event_log.h"
#include "telemetry/request_trace.h"
#include "workloads/registry.h"

using namespace sparseap;
using namespace sparseap::serve;

namespace {

std::string
tempPath(const char *tag)
{
    return std::string("/tmp/sparseap-test-sobs-") + tag + "." +
           std::to_string(::getpid());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

uint64_t
counterValue(const StatsReply &reply, const std::string &name)
{
    for (const auto &[key, value] : reply.counters) {
        if (key == name)
            return value;
    }
    return 0;
}

bool
hasCounter(const StatsReply &reply, const std::string &name)
{
    for (const auto &[key, value] : reply.counters) {
        if (key == name)
            return true;
    }
    return false;
}

const StatsWindowRow *
findRow(const StatsReply &reply, const std::string &name)
{
    for (const StatsWindowRow &row : reply.windows) {
        if (row.name == name)
            return &row;
    }
    return nullptr;
}

struct ObsDaemon
{
    std::shared_ptr<FlatAutomaton> automaton;
    std::vector<uint8_t> input;
    std::unique_ptr<MatchService> service;
    std::unique_ptr<Server> server;
    std::string socketPath;

    ObsDaemon()
    {
        Rng rng(321);
        Workload w = generateWorkload("Bro217", 7, 5);
        automaton = std::make_shared<FlatAutomaton>(w.app);
        input = synthesizeInput(w.input, 4 * 1024, rng);
    }

    ~ObsDaemon()
    {
        if (server)
            server->stop();
    }

    void start(const char *tag, ServerConfig scfg = {},
               MatchServiceConfig mcfg = {})
    {
        service = std::make_unique<MatchService>(mcfg);
        service->addTenant("Bro217", automaton);
        socketPath = tempPath(tag) + ".sock";
        scfg.socketPath = socketPath;
        server = std::make_unique<Server>(service.get(), scfg);
        std::string error;
        ASSERT_TRUE(server->start(&error)) << error;
    }
};

/** Open stream 1, feed the whole input once, close the stream. */
void
driveOneFeed(ObsDaemon *daemon)
{
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon->socketPath, &error)) << error;
    ASSERT_EQ(client.open("Bro217", 1).status, ServeClient::Status::Ok);
    ReportGroup group;
    ASSERT_EQ(
        client.feed("Bro217", 1, daemon->input, &group).status,
        ServeClient::Status::Ok);
    ASSERT_EQ(client.closeStream("Bro217", 1, nullptr).status,
              ServeClient::Status::Ok);
}

} // namespace

// ------------------------------------------- slow-request capture gate --

TEST(ServeObservability, InjectedDelayCapturesSpanTreeAndLogsIt)
{
    telemetry::SlowRequestRing::instance().clear();
    const std::string log_path = tempPath("slowlog");
    telemetry::initEventLog(log_path, telemetry::LogLevel::Info);

    ObsDaemon daemon;
    ServerConfig scfg;
    scfg.observability.slowRequestMicros = 1000; // 1 ms threshold
    MatchServiceConfig mcfg;
    mcfg.debugFeedDelayMicros = 5000; // every feed stalls 5 ms
    daemon.start("slow", scfg, mcfg);

    driveOneFeed(&daemon);
    daemon.server->stop();
    telemetry::closeEventLog();

    // The feed crossed the threshold: its tree is in the ring with the
    // expected spans.
    const std::vector<telemetry::CapturedRequest> captured =
        telemetry::SlowRequestRing::instance().captured();
    ASSERT_FALSE(captured.empty());
    const telemetry::CapturedRequest *feed = nullptr;
    for (const telemetry::CapturedRequest &cap : captured) {
        if (cap.op == "Feed")
            feed = &cap;
    }
    ASSERT_NE(feed, nullptr) << "no captured Feed request";
    EXPECT_EQ(feed->tenant, "Bro217");
    EXPECT_GE(feed->latencyMicros, 1000u);
    ASSERT_FALSE(feed->spans.empty());
    EXPECT_STREQ(feed->spans[0].name, "serve.request");
    EXPECT_EQ(feed->spans[0].depth, 0u);
    bool saw_admission = false, saw_execute = false, saw_feed = false;
    for (const telemetry::RequestSpanRecord &span : feed->spans) {
        const std::string name = span.name;
        saw_admission |= name == "serve.admission";
        saw_execute |= name == "serve.execute";
        // The wire Feed path executes via feedMany even for a single
        // chunk; a duplicate-id degenerate batch would go via feed().
        saw_feed |= name == "service.feed_many" ||
                    name == "session.feed";
    }
    EXPECT_TRUE(saw_admission);
    EXPECT_TRUE(saw_execute);
    EXPECT_TRUE(saw_feed);

    // The event log carries a serve.request.slow line with the *same*
    // request id.
    const std::string needle =
        "\"event\":\"serve.request.slow\"";
    const std::string text = slurp(log_path);
    EXPECT_NE(text.find(needle), std::string::npos);
    EXPECT_NE(
        text.find("\"request_id\":" +
                  std::to_string(feed->requestId)),
        std::string::npos)
        << "log lines do not mention the captured request id";
    EXPECT_NE(text.find("\"tenant\":\"Bro217\""), std::string::npos);

    telemetry::SlowRequestRing::instance().clear();
    std::remove(log_path.c_str());
}

// ----------------------------------------- windowed / per-tenant STATS --

TEST(ServeObservability, StatsCarryWindowRatesAndTenantSeries)
{
    ObsDaemon daemon;
    ServerConfig scfg;
    // Sample manually below; a 0 period disables the observer thread.
    scfg.observability.samplePeriodMillis = 0;
    daemon.start("stats", scfg);

    driveOneFeed(&daemon);
    daemon.server->sampleNow();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    driveOneFeed(&daemon);
    daemon.server->sampleNow();

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.socketPath, &error)) << error;
    StatsReply reply;
    ASSERT_EQ(client.stats(&reply).status, ServeClient::Status::Ok);

    // Per-tenant labeled totals rode along with the flat counters.
    EXPECT_GE(counterValue(reply, "serve.feeds{tenant=Bro217}"), 1u);
    EXPECT_GE(counterValue(reply, "serve.fed_bytes{tenant=Bro217}"),
              1u);
    EXPECT_GE(counterValue(reply, "serve.requests{tenant=Bro217}"),
              1u);
    // Engine-phase attribution: the cycles went *somewhere*.
    const uint64_t cycles =
        counterValue(reply, "serve.dfa_cycles{tenant=Bro217}") +
        counterValue(reply, "serve.dense_cycles{tenant=Bro217}") +
        counterValue(reply, "serve.sparse_cycles{tenant=Bro217}");
    EXPECT_GE(cycles, daemon.input.size());
    EXPECT_GE(counterValue(reply, "serve.watchdog.ticks"), 2u);

    // Two samples ~20 ms apart: the 10 s horizon covers both, so the
    // rate rows are live.
    EXPECT_GT(reply.windowSpanMicros[0], 0u);
    const StatsWindowRow *feeds = findRow(reply, "serve.feeds");
    ASSERT_NE(feeds, nullptr) << "no windowed serve.feeds row";
    EXPECT_GT(feeds->milli[0], 0u);
    const StatsWindowRow *p50 =
        findRow(reply, "serve.request_p50_us");
    ASSERT_NE(p50, nullptr) << "no derived latency quantile row";
    EXPECT_GT(p50->milli[0], 0u);
}

// --------------------------------------------------- prometheus export --

TEST(ServeObservability, SampleWritesPrometheusMetricsFile)
{
    ObsDaemon daemon;
    const std::string metrics_path = tempPath("prom");
    ServerConfig scfg;
    scfg.observability.samplePeriodMillis = 0;
    scfg.observability.metricsPath = metrics_path;
    daemon.start("prom", scfg);

    driveOneFeed(&daemon);
    daemon.server->sampleNow();

    const std::string text = slurp(metrics_path);
    EXPECT_NE(text.find("# TYPE sparseap_serve_feeds counter"),
              std::string::npos);
    EXPECT_NE(text.find("sparseap_serve_feeds{tenant=\"Bro217\"}"),
              std::string::npos);
    EXPECT_NE(text.find("sparseap_serve_request_micros"),
              std::string::npos);
    std::remove(metrics_path.c_str());
}

// ------------------------------------------------ observability off --

TEST(ServeObservability, DisabledObservabilityKeepsLegacyStatsShape)
{
    ObsDaemon daemon;
    ServerConfig scfg;
    scfg.observability.enabled = false;
    MatchServiceConfig mcfg;
    mcfg.tenantMetrics = false;
    daemon.start("off", scfg, mcfg);

    driveOneFeed(&daemon);
    daemon.server->sampleNow(); // no-op path, must not export

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.socketPath, &error)) << error;
    StatsReply reply;
    ASSERT_EQ(client.stats(&reply).status, ServeClient::Status::Ok);

    EXPECT_TRUE(hasCounter(reply, "serve.feeds"));
    for (const auto &[key, value] : reply.counters) {
        EXPECT_EQ(key.find('{'), std::string::npos)
            << "labeled series leaked with observability off: " << key;
    }
    EXPECT_TRUE(reply.windows.empty());
    for (size_t h = 0; h < kStatsHorizons; ++h)
        EXPECT_EQ(reply.windowSpanMicros[h], 0u);
}

// ----------------------------------------------- stats wire round-trip --

TEST(ServeObservability, StatsReplyWindowsRoundTripOnTheWire)
{
    StatsReply reply;
    reply.counters = {{"serve.feeds", 3}, {"serve.requests", 5}};
    reply.windowSpanMicros[0] = 10'000'000;
    reply.windowSpanMicros[1] = 60'000'000;
    reply.windowSpanMicros[2] = 0;
    StatsWindowRow row;
    row.name = "serve.feeds";
    row.milli[0] = 1500;
    row.milli[1] = 250;
    reply.windows.push_back(row);

    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeStatsReply(&w, reply);

    StatsReply decoded;
    WireReader r(payload);
    ASSERT_TRUE(decodeStatsReply(&r, &decoded));
    ASSERT_EQ(decoded.counters.size(), 2u);
    EXPECT_EQ(decoded.counters[0].first, "serve.feeds");
    EXPECT_EQ(decoded.counters[0].second, 3u);
    EXPECT_EQ(decoded.windowSpanMicros[0], 10'000'000u);
    EXPECT_EQ(decoded.windowSpanMicros[2], 0u);
    ASSERT_EQ(decoded.windows.size(), 1u);
    EXPECT_EQ(decoded.windows[0].name, "serve.feeds");
    EXPECT_EQ(decoded.windows[0].milli[0], 1500u);
    EXPECT_EQ(decoded.windows[0].milli[1], 250u);
    EXPECT_EQ(decoded.windows[0].milli[2], 0u);
}

TEST(ServeObservability, LegacyStatsPayloadStillDecodes)
{
    // An old server stops after the counter list; a new decoder must
    // accept that and leave the window section empty.
    StatsReply reply;
    reply.counters = {{"serve.feeds", 3}};
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    w.u32(1);
    w.str("serve.feeds");
    w.u64(3);

    StatsReply decoded;
    decoded.windows.push_back(StatsWindowRow{}); // must be cleared
    WireReader r(payload);
    ASSERT_TRUE(decodeStatsReply(&r, &decoded));
    ASSERT_EQ(decoded.counters.size(), 1u);
    EXPECT_TRUE(decoded.windows.empty());
    EXPECT_EQ(decoded.windowSpanMicros[0], 0u);
}

TEST(ServeObservability, HostileWindowRowCountIsRejected)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    w.u32(0); // no counters
    for (size_t h = 0; h < kStatsHorizons; ++h)
        w.u64(1);
    w.u32(0xffffffffu); // absurd row count, nowhere near enough bytes

    StatsReply decoded;
    WireReader r(payload);
    EXPECT_FALSE(decodeStatsReply(&r, &decoded));
}
