/**
 * @file
 * Protocol codec unit + robustness tests: round trips for every typed
 * payload, then the fuzz battery the wire layer is specified against —
 * truncated frames, oversized length prefixes, hostile element counts,
 * random mutations and random garbage must never crash, never read out
 * of range, and never yield a frame that was not sent.
 */

#include <gtest/gtest.h>

#include <random>

#include "serve/protocol.h"

using namespace sparseap;
using namespace sparseap::serve;

namespace {

std::vector<uint8_t>
frameBytes(MsgType type, uint16_t flags, uint64_t request_id,
           std::span<const uint8_t> payload)
{
    std::vector<uint8_t> out;
    appendFrame(&out, type, flags, request_id, payload);
    return out;
}

} // namespace

TEST(ServeProtocol, FrameRoundTrip)
{
    const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    const std::vector<uint8_t> bytes =
        frameBytes(MsgType::Feed, kFlagMore, 0xdeadbeefcafe, payload);

    FrameReader reader;
    reader.append(bytes);
    Frame frame;
    std::string error;
    ASSERT_EQ(reader.next(&frame, &error), FrameReader::Status::Ready);
    EXPECT_EQ(frame.version, kProtocolVersion);
    EXPECT_EQ(frame.type, static_cast<uint8_t>(MsgType::Feed));
    EXPECT_EQ(frame.flags, kFlagMore);
    EXPECT_EQ(frame.requestId, 0xdeadbeefcafeull);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(reader.next(&frame, &error),
              FrameReader::Status::NeedMore);
}

TEST(ServeProtocol, ByteAtATimeReassembly)
{
    const std::vector<uint8_t> payload(1000, 0x42);
    const std::vector<uint8_t> bytes =
        frameBytes(MsgType::Match, 0, 7, payload);

    FrameReader reader;
    Frame frame;
    std::string error;
    for (size_t i = 0; i + 1 < bytes.size(); ++i) {
        reader.append({&bytes[i], 1});
        ASSERT_EQ(reader.next(&frame, &error),
                  FrameReader::Status::NeedMore);
    }
    reader.append({&bytes.back(), 1});
    ASSERT_EQ(reader.next(&frame, &error), FrameReader::Status::Ready);
    EXPECT_EQ(frame.payload, payload);
}

TEST(ServeProtocol, PipelinedFrames)
{
    std::vector<uint8_t> bytes;
    for (uint64_t id = 1; id <= 50; ++id) {
        const std::vector<uint8_t> payload(id, uint8_t(id));
        appendFrame(&bytes, MsgType::Ping, 0, id, payload);
    }
    FrameReader reader;
    reader.append(bytes);
    Frame frame;
    std::string error;
    for (uint64_t id = 1; id <= 50; ++id) {
        ASSERT_EQ(reader.next(&frame, &error),
                  FrameReader::Status::Ready);
        EXPECT_EQ(frame.requestId, id);
        EXPECT_EQ(frame.payload.size(), id);
    }
    EXPECT_EQ(reader.next(&frame, &error),
              FrameReader::Status::NeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeProtocol, OversizedLengthPrefixIsCorrupt)
{
    // len = 1 GiB: must be rejected before any buffering of that size.
    const std::vector<uint8_t> bytes = {0x00, 0x00, 0x00, 0x40,
                                        1,    1,    0,    0};
    FrameReader reader;
    reader.append(bytes);
    Frame frame;
    std::string error;
    EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::Corrupt);
    EXPECT_FALSE(error.empty());
    // Sticky: more bytes don't resurrect the stream.
    reader.append(bytes);
    EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::Corrupt);
}

TEST(ServeProtocol, UndersizedLengthPrefixIsCorrupt)
{
    const std::vector<uint8_t> bytes = {3, 0, 0, 0, 9, 9, 9};
    FrameReader reader;
    reader.append(bytes);
    Frame frame;
    std::string error;
    EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::Corrupt);
}

TEST(ServeProtocol, TruncatedFrameNeverYields)
{
    const std::vector<uint8_t> payload(100, 7);
    const std::vector<uint8_t> bytes =
        frameBytes(MsgType::Open, 0, 3, payload);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        FrameReader reader;
        reader.append({bytes.data(), cut});
        Frame frame;
        std::string error;
        EXPECT_EQ(reader.next(&frame, &error),
                  FrameReader::Status::NeedMore);
    }
}

TEST(ServeProtocol, StreamRequestRoundTrip)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeStreamRequest(&w, StreamRequest{"tenant-a", 0x123456789abc});
    WireReader r(payload);
    StreamRequest out;
    ASSERT_TRUE(decodeStreamRequest(&r, &out));
    EXPECT_EQ(out.tenant, "tenant-a");
    EXPECT_EQ(out.streamId, 0x123456789abcull);
}

TEST(ServeProtocol, FeedRequestRoundTrip)
{
    const std::vector<uint8_t> c1 = {1, 2, 3};
    const std::vector<uint8_t> c2 = {};
    const std::vector<uint8_t> c3(5000, 9);
    FeedRequest req;
    req.tenant = "t";
    req.entries = {{10, c1}, {11, c2}, {12, c3}};
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeFeedRequest(&w, req);

    WireReader r(payload);
    FeedRequest out;
    ASSERT_TRUE(decodeFeedRequest(&r, &out));
    EXPECT_EQ(out.tenant, "t");
    ASSERT_EQ(out.entries.size(), 3u);
    EXPECT_EQ(out.entries[0].streamId, 10u);
    EXPECT_EQ(std::vector<uint8_t>(out.entries[0].chunk.begin(),
                                   out.entries[0].chunk.end()),
              c1);
    EXPECT_TRUE(out.entries[1].chunk.empty());
    EXPECT_EQ(out.entries[2].chunk.size(), c3.size());
}

TEST(ServeProtocol, ReportGroupsRoundTrip)
{
    std::vector<ReportGroup> groups(2);
    groups[0].streamId = 1;
    groups[0].streamOffset = 1000;
    groups[0].reports = {{5, 2}, {9, 3}};
    groups[1].streamId = 2;
    groups[1].streamOffset = 0;

    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeReportGroups(&w, groups);

    WireReader r(payload);
    std::vector<ReportGroup> out;
    ASSERT_TRUE(decodeReportGroups(&r, &out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].streamId, 1u);
    EXPECT_EQ(out[0].streamOffset, 1000u);
    ASSERT_EQ(out[0].reports.size(), 2u);
    EXPECT_EQ(out[0].reports[1].position, 9u);
    EXPECT_EQ(out[0].reports[1].state, 3u);
    EXPECT_TRUE(out[1].reports.empty());
}

TEST(ServeProtocol, StatsReplyRoundTrip)
{
    StatsReply s;
    s.counters = {{"serve.feeds", 42}, {"serve.shed", 0}};
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeStatsReply(&w, s);
    WireReader r(payload);
    StatsReply out;
    ASSERT_TRUE(decodeStatsReply(&r, &out));
    ASSERT_EQ(out.counters.size(), 2u);
    EXPECT_EQ(out.counters[0].first, "serve.feeds");
    EXPECT_EQ(out.counters[0].second, 42u);
}

TEST(ServeProtocol, HostileElementCountRejected)
{
    // A FeedRequest claiming 2^32-1 entries in a tiny payload must be
    // rejected by the count guard, not drive a giant reserve.
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    w.str("t");
    w.u32(0xffffffff);
    WireReader r(payload);
    FeedRequest out;
    EXPECT_FALSE(decodeFeedRequest(&r, &out));

    std::vector<uint8_t> payload2;
    WireWriter w2(&payload2);
    w2.u32(0xffffffff);
    WireReader r2(payload2);
    std::vector<ReportGroup> groups;
    EXPECT_FALSE(decodeReportGroups(&r2, &groups));
}

TEST(ServeProtocol, TruncatedPayloadsNeverDecode)
{
    FeedRequest req;
    const std::vector<uint8_t> chunk(100, 1);
    req.tenant = "tenant";
    req.entries = {{1, chunk}, {2, chunk}};
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeFeedRequest(&w, req);

    for (size_t cut = 0; cut < payload.size(); ++cut) {
        WireReader r({payload.data(), cut});
        FeedRequest out;
        EXPECT_FALSE(decodeFeedRequest(&r, &out))
            << "decoded from a " << cut << "-byte truncation";
    }
}

TEST(ServeProtocol, MutationFuzzNeverCrashes)
{
    // Random single-byte mutations of valid payloads: decoders must
    // stay total (return value is unconstrained; memory safety is the
    // assertion, enforced by ASan/valgrind legs).
    FeedRequest req;
    const std::vector<uint8_t> chunk = {1, 2, 3, 4, 5, 6, 7, 8};
    req.tenant = "fuzz";
    req.entries = {{1, chunk}, {2, chunk}, {3, chunk}};
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeFeedRequest(&w, req);

    std::mt19937 rng(20180808);
    for (int i = 0; i < 5000; ++i) {
        std::vector<uint8_t> mutated = payload;
        const size_t pos = rng() % mutated.size();
        mutated[pos] = static_cast<uint8_t>(rng());
        WireReader r(mutated);
        FeedRequest out;
        (void)decodeFeedRequest(&r, &out);
        WireReader r2(mutated);
        std::vector<ReportGroup> groups;
        (void)decodeReportGroups(&r2, &groups);
        WireReader r3(mutated);
        StatsReply stats;
        (void)decodeStatsReply(&r3, &stats);
    }
}

TEST(ServeProtocol, GarbageStreamFuzzNeverCrashes)
{
    // Random garbage through the frame reader in random-sized slabs:
    // every outcome is NeedMore, Ready (for coincidentally valid
    // framing), or a sticky Corrupt — never a crash or hang.
    std::mt19937 rng(7);
    for (int round = 0; round < 200; ++round) {
        FrameReader reader;
        std::vector<uint8_t> garbage(1 + rng() % 4096);
        for (uint8_t &b : garbage)
            b = static_cast<uint8_t>(rng());
        size_t off = 0;
        while (off < garbage.size()) {
            const size_t n =
                std::min<size_t>(1 + rng() % 128, garbage.size() - off);
            reader.append({garbage.data() + off, n});
            off += n;
            Frame frame;
            std::string error;
            for (int pulls = 0; pulls < 100; ++pulls) {
                const FrameReader::Status st =
                    reader.next(&frame, &error);
                if (st != FrameReader::Status::Ready)
                    break;
            }
        }
    }
}

TEST(ServeProtocol, RequestTypeClassification)
{
    EXPECT_TRUE(isRequestType(static_cast<uint8_t>(MsgType::Feed)));
    EXPECT_TRUE(isRequestType(static_cast<uint8_t>(MsgType::Ping)));
    EXPECT_FALSE(isRequestType(static_cast<uint8_t>(MsgType::Ok)));
    EXPECT_FALSE(isRequestType(0));
    EXPECT_FALSE(isRequestType(99));
    EXPECT_STREQ(msgTypeName(static_cast<uint8_t>(MsgType::Overload)),
                 "Overload");
    EXPECT_STREQ(msgTypeName(42), "?");
}
