/**
 * @file
 * End-to-end daemon tests over a real Unix-domain socket: the identity
 * gate (socket reports == whole-input Engine::run, across workloads,
 * concurrent client streams and worker counts), deterministic admission
 * semantics (queue depth, tenant caps, deadline sheds — unit-tested on
 * AdmissionQueue with an injected clock), and the protocol robustness
 * battery: truncated frames, oversized prefixes, unknown types and
 * mid-stream disconnects must never crash the server or leak a session
 * (the table must drain to empty after every teardown).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/engine.h"
#include "store/format.h"
#include "workloads/registry.h"

using namespace sparseap;
using namespace sparseap::serve;

namespace {

uint64_t
sortedDigest(ReportList reports)
{
    std::sort(reports.begin(), reports.end());
    store::DigestBuilder d;
    for (const Report &r : reports) {
        d.add(r.position);
        d.add(r.state);
    }
    return d.digest();
}

std::string
tempSocketPath(const char *tag)
{
    return std::string("/tmp/sparseap-test-") + tag + "." +
           std::to_string(::getpid()) + ".sock";
}

/** Wait until the session table drains (disconnect sweeps are async). */
bool
waitForEmptyTable(const MatchService &service, int timeout_ms = 5000)
{
    for (int waited = 0; waited < timeout_ms; ++waited) {
        if (service.openStreamCount() == 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return service.openStreamCount() == 0;
}

/** Raw socket (no ServeClient conveniences) for fault injection. */
struct RawConn
{
    int fd = -1;
    FrameReader reader;

    explicit RawConn(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~RawConn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool send(std::span<const uint8_t> bytes)
    {
        size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n = ::send(fd, bytes.data() + off,
                                     bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one frame (5s budget). @return false on close/timeout. */
    bool readFrame(Frame *out)
    {
        timeval tv{5, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        for (;;) {
            std::string error;
            if (reader.next(out, &error) == FrameReader::Status::Ready)
                return true;
            uint8_t buf[4096];
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0)
                return false;
            reader.append({buf, static_cast<size_t>(n)});
        }
    }
};

struct TestDaemon
{
    std::vector<std::shared_ptr<FlatAutomaton>> automata;
    std::vector<std::string> names;
    std::vector<std::vector<uint8_t>> inputs;
    std::unique_ptr<MatchService> service;
    std::unique_ptr<Server> server;
    std::string socketPath;

    explicit TestDaemon(std::initializer_list<const char *> abbrs,
                        size_t input_bytes = 16 * 1024)
    {
        Rng rng(321);
        for (const char *abbr : abbrs) {
            Workload w = generateWorkload(abbr, 7, 5);
            automata.push_back(std::make_shared<FlatAutomaton>(w.app));
            names.push_back(abbr);
            inputs.push_back(
                synthesizeInput(w.input, input_bytes, rng));
        }
    }

    void start(const char *tag, ServerConfig scfg = {},
               MatchServiceConfig mcfg = {})
    {
        service = std::make_unique<MatchService>(mcfg);
        for (size_t i = 0; i < automata.size(); ++i)
            service->addTenant(names[i], automata[i]);
        socketPath = tempSocketPath(tag);
        scfg.socketPath = socketPath;
        server = std::make_unique<Server>(service.get(), scfg);
        std::string error;
        ASSERT_TRUE(server->start(&error)) << error;
    }

    uint64_t wholeInputDigest(size_t tenant) const
    {
        Engine engine(*automata[tenant], EngineMode::Auto);
        return sortedDigest(engine.run(inputs[tenant]).reports);
    }
};

/** One client stream over its own connection; returns sorted digest. */
uint64_t
driveStream(const std::string &socket_path, const std::string &tenant,
            uint64_t stream_id, const std::vector<uint8_t> &input,
            size_t chunk)
{
    ServeClient client;
    std::string error;
    if (!client.connect(socket_path, &error))
        return 0;
    if (client.open(tenant, stream_id).status != ServeClient::Status::Ok)
        return 0;
    ReportList all;
    for (size_t off = 0; off < input.size(); off += chunk) {
        const size_t n = std::min(chunk, input.size() - off);
        ReportGroup group;
        if (client.feed(tenant, stream_id, {input.data() + off, n},
                        &group)
                .status != ServeClient::Status::Ok)
            return 0;
        all.insert(all.end(), group.reports.begin(), group.reports.end());
    }
    ReportGroup tail;
    if (client.closeStream(tenant, stream_id, &tail).status !=
        ServeClient::Status::Ok)
        return 0;
    all.insert(all.end(), tail.reports.begin(), tail.reports.end());
    return sortedDigest(std::move(all));
}

} // namespace

// ------------------------------------------------ admission semantics --

TEST(AdmissionQueue, DepthAndTenantCapsAreExact)
{
    AdmissionConfig config;
    config.queueDepth = 2;
    config.perTenantInFlight = 2;
    uint64_t now = 0;
    AdmissionQueue q(config, [&] { return now; });

    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Admitted);
    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Admitted);
    // Queue full (2 queued) → Overloaded for everyone; a full queue
    // makes admission impossible regardless of who asks.
    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Overloaded);
    EXPECT_EQ(q.tryEnqueue("b", nullptr), AdmitResult::Overloaded);

    AdmissionQueue::Item item;
    std::vector<AdmissionQueue::Item> shed;
    ASSERT_TRUE(q.pop(&item, &shed));
    EXPECT_TRUE(shed.empty());
    // Room in the queue now, but "a" was dequeued without finish(): it
    // still holds 2 in-flight slots → TenantBusy (retry, not overload).
    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::TenantBusy);
    q.finish("a");
    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Admitted);

    const AdmissionStats stats = q.stats();
    EXPECT_EQ(stats.requests, 6u);
    EXPECT_EQ(stats.admitted, 3u);
    EXPECT_EQ(stats.overloaded, 2u);
    EXPECT_EQ(stats.retried, 1u);
    EXPECT_EQ(stats.shed, 3u);
}

TEST(AdmissionQueue, DeadlineShedsAtDequeue)
{
    AdmissionConfig config;
    config.queueDepth = 8;
    config.deadlineMicros = 100;
    uint64_t now = 0;
    AdmissionQueue q(config, [&] { return now; });

    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Admitted);
    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Admitted);
    now = 50;
    EXPECT_EQ(q.tryEnqueue("b", nullptr), AdmitResult::Admitted);

    now = 200; // first two are 200us old (> 100), third is 150us old
    AdmissionQueue::Item item;
    std::vector<AdmissionQueue::Item> shed;
    q.close(); // so a fully-shed queue can't block the pop
    ASSERT_FALSE(q.pop(&item, &shed));
    EXPECT_EQ(shed.size(), 3u);
    EXPECT_EQ(q.stats().shed, 3u);
    // Shed items released their tenant slots.
    EXPECT_EQ(q.inFlight("a"), 0u);
    EXPECT_EQ(q.inFlight("b"), 0u);
}

TEST(AdmissionQueue, DeadlineKeepsFreshItems)
{
    AdmissionConfig config;
    config.deadlineMicros = 100;
    uint64_t now = 0;
    AdmissionQueue q(config, [&] { return now; });
    EXPECT_EQ(q.tryEnqueue("a", nullptr), AdmitResult::Admitted);
    now = 500;
    EXPECT_EQ(q.tryEnqueue("b", nullptr), AdmitResult::Admitted);
    now = 550;
    AdmissionQueue::Item item;
    std::vector<AdmissionQueue::Item> shed;
    ASSERT_TRUE(q.pop(&item, &shed));
    EXPECT_EQ(shed.size(), 1u); // "a" shed, "b" live
    EXPECT_EQ(item.tenant, "b");
}

// ----------------------------------------------------- identity gates --

TEST(ServeServer, EndToEndIdentityAcrossWorkloadsAndWorkers)
{
    // The acceptance gate: 4 workloads x 8 concurrent client streams,
    // socket reports byte-identical (as sorted digests) to whole-input
    // Engine::run, independent of the worker count.
    TestDaemon daemon({"Bro217", "Brill", "EM", "LV"});
    for (const unsigned workers : {1u, 4u}) {
        ServerConfig scfg;
        scfg.workers = workers;
        daemon.start("identity", scfg);

        constexpr size_t kStreams = 8;
        std::vector<uint64_t> digests(kStreams);
        std::vector<std::thread> threads;
        for (size_t s = 0; s < kStreams; ++s) {
            threads.emplace_back([&, s] {
                const size_t tenant = s % daemon.names.size();
                digests[s] = driveStream(
                    daemon.socketPath, daemon.names[tenant], s + 1,
                    daemon.inputs[tenant], 900 + 64 * s);
            });
        }
        for (std::thread &t : threads)
            t.join();
        for (size_t s = 0; s < kStreams; ++s)
            EXPECT_EQ(digests[s],
                      daemon.wholeInputDigest(s % daemon.names.size()))
                << "stream " << s << " workers " << workers;

        EXPECT_EQ(daemon.service->openStreamCount(), 0u);
        EXPECT_EQ(daemon.server->admission().stats().shed, 0u);
        daemon.server->stop();
    }
}

TEST(ServeServer, MatchAndStatsOverSocket)
{
    TestDaemon daemon({"Bro217"});
    daemon.start("match");

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.socketPath, &error)) << error;
    ReportGroup group;
    ASSERT_EQ(client.match("Bro217", daemon.inputs[0], &group).status,
              ServeClient::Status::Ok);
    EXPECT_EQ(sortedDigest(group.reports), daemon.wholeInputDigest(0));

    StatsReply stats;
    ASSERT_EQ(client.stats(&stats).status, ServeClient::Status::Ok);
    uint64_t feeds = 0;
    bool found = false;
    for (const auto &[key, value] : stats.counters) {
        if (key == "serve.feeds") {
            feeds = value;
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_GE(feeds, 1u);

    EXPECT_EQ(client.match("nope", daemon.inputs[0], &group).status,
              ServeClient::Status::Error);
    daemon.server->stop();
}

// ------------------------------------------------- overload semantics --

TEST(ServeServer, TinyQueueShedsLoudlyAndNeverHangs)
{
    // Saturation test: queue depth 1, one worker, 8 hammering clients.
    // Overload/Retry responses must appear, every request must get
    // *some* response (the loop below would hang otherwise), and the
    // shed counter must account for every rejection.
    TestDaemon daemon({"Bro217"}, 4 * 1024);
    ServerConfig scfg;
    scfg.workers = 1;
    scfg.admission.queueDepth = 1;
    scfg.admission.perTenantInFlight = 2;
    daemon.start("overload", scfg);

    constexpr size_t kClients = 8;
    std::vector<uint64_t> rejected(kClients);
    std::vector<uint64_t> completed(kClients);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            std::string error;
            ASSERT_TRUE(client.connect(daemon.socketPath, &error));
            // Opens get shed under this load too: retry until admitted.
            for (;;) {
                const auto r = client.open("Bro217", c + 1);
                if (r.status == ServeClient::Status::Ok)
                    break;
                ASSERT_TRUE(r.status == ServeClient::Status::Overload ||
                            r.status == ServeClient::Status::Retry);
                ++rejected[c];
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
            for (int i = 0; i < 50; ++i) {
                ReportGroup group;
                const auto r = client.feed("Bro217", c + 1,
                                           daemon.inputs[0], &group);
                if (r.status == ServeClient::Status::Ok)
                    ++completed[c];
                else if (r.status == ServeClient::Status::Overload ||
                         r.status == ServeClient::Status::Retry)
                    ++rejected[c];
                else
                    FAIL() << "unexpected transport/error status";
            }
            client.closeStream("Bro217", c + 1, nullptr);
        });
    }
    for (std::thread &t : threads)
        t.join();

    uint64_t total_rejected = 0, total_completed = 0;
    for (size_t c = 0; c < kClients; ++c) {
        total_rejected += rejected[c];
        total_completed += completed[c];
    }
    EXPECT_GT(total_rejected, 0u) << "tiny queue never shed";
    EXPECT_GT(total_completed, 0u) << "server starved everyone";
    const AdmissionStats adm = daemon.server->admission().stats();
    EXPECT_EQ(adm.overloaded + adm.retried, adm.shed);
    EXPECT_GT(adm.shed, 0u);
    EXPECT_TRUE(waitForEmptyTable(*daemon.service));
    daemon.server->stop();
}

// ------------------------------------------------ protocol robustness --

TEST(ServeServer, UnknownTypeAndBadVersionGetErrors)
{
    TestDaemon daemon({"Bro217"});
    daemon.start("badframes");

    RawConn raw(daemon.socketPath);
    ASSERT_GE(raw.fd, 0);

    std::vector<uint8_t> bytes;
    appendFrame(&bytes, static_cast<MsgType>(99), 0, 1, {});
    ASSERT_TRUE(raw.send(bytes));
    Frame reply;
    ASSERT_TRUE(raw.readFrame(&reply));
    EXPECT_EQ(reply.type, static_cast<uint8_t>(MsgType::Error));
    EXPECT_EQ(reply.requestId, 1u);
    WireReader r(reply.payload);
    ErrorReply err;
    ASSERT_TRUE(decodeError(&r, &err));
    EXPECT_EQ(err.code, ErrorCode::UnknownType);

    // Version byte mangled in an otherwise valid frame.
    bytes.clear();
    appendFrame(&bytes, MsgType::Ping, 0, 2, {});
    bytes[4] = 0x7f; // version field
    ASSERT_TRUE(raw.send(bytes));
    ASSERT_TRUE(raw.readFrame(&reply));
    EXPECT_EQ(reply.type, static_cast<uint8_t>(MsgType::Error));
    WireReader r2(reply.payload);
    ASSERT_TRUE(decodeError(&r2, &err));
    EXPECT_EQ(err.code, ErrorCode::BadVersion);

    // The connection survived both; a Ping still works.
    bytes.clear();
    appendFrame(&bytes, MsgType::Ping, 0, 3, {});
    ASSERT_TRUE(raw.send(bytes));
    ASSERT_TRUE(raw.readFrame(&reply));
    EXPECT_EQ(reply.type, static_cast<uint8_t>(MsgType::Ok));
    daemon.server->stop();
}

TEST(ServeServer, OversizedPrefixClosesConnectionServerSurvives)
{
    TestDaemon daemon({"Bro217"});
    daemon.start("oversize");

    {
        RawConn raw(daemon.socketPath);
        ASSERT_GE(raw.fd, 0);
        const std::vector<uint8_t> evil = {0xff, 0xff, 0xff, 0xff,
                                           1,    2,    3,    4};
        ASSERT_TRUE(raw.send(evil));
        Frame reply;
        EXPECT_FALSE(raw.readFrame(&reply)); // server hung up
    }

    // The server is still healthy for new clients.
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.socketPath, &error)) << error;
    EXPECT_EQ(client.ping().status, ServeClient::Status::Ok);
    EXPECT_TRUE(waitForEmptyTable(*daemon.service));
    daemon.server->stop();
}

TEST(ServeServer, TruncatedFrameThenDisconnectLeaksNothing)
{
    TestDaemon daemon({"Bro217"});
    daemon.start("truncated");

    {
        RawConn raw(daemon.socketPath);
        ASSERT_GE(raw.fd, 0);
        // A valid Open, then half a Feed frame, then vanish.
        std::vector<uint8_t> payload;
        WireWriter w(&payload);
        encodeStreamRequest(&w, StreamRequest{"Bro217", 7});
        std::vector<uint8_t> bytes;
        appendFrame(&bytes, MsgType::Open, 0, 1, payload);
        ASSERT_TRUE(raw.send(bytes));
        Frame reply;
        ASSERT_TRUE(raw.readFrame(&reply));
        EXPECT_EQ(reply.type, static_cast<uint8_t>(MsgType::Ok));
        EXPECT_EQ(daemon.service->openStreamCount(), 1u);

        bytes.clear();
        appendFrame(&bytes, MsgType::Feed, 0, 2,
                    std::vector<uint8_t>(100, 1));
        bytes.resize(bytes.size() / 2); // truncated mid-frame
        ASSERT_TRUE(raw.send(bytes));
    } // disconnect with the stream open and a partial frame buffered

    EXPECT_TRUE(waitForEmptyTable(*daemon.service))
        << "disconnect did not sweep the client's streams";
    daemon.server->stop();
}

TEST(ServeServer, MidFeedDisconnectSweepsBusyStreams)
{
    // Disconnect while feeds are executing: doomed streams must be
    // destroyed at checkin, never leaked.
    TestDaemon daemon({"Bro217"});
    daemon.start("midfeed");

    for (int round = 0; round < 5; ++round) {
        ServeClient client;
        std::string error;
        ASSERT_TRUE(client.connect(daemon.socketPath, &error));
        ASSERT_EQ(client.open("Bro217", 1).status,
                  ServeClient::Status::Ok);
        // Fire a feed and disconnect without reading the response.
        FeedRequest req;
        req.tenant = "Bro217";
        req.entries = {{1, daemon.inputs[0]}};
        std::vector<uint8_t> payload;
        WireWriter w(&payload);
        encodeFeedRequest(&w, req);
        std::vector<uint8_t> bytes;
        appendFrame(&bytes, MsgType::Feed, 0, 99, payload);
        ASSERT_TRUE(client.sendRaw(bytes));
        client.disconnect();
        ASSERT_TRUE(waitForEmptyTable(*daemon.service))
            << "round " << round;
    }
    daemon.server->stop();
}

TEST(ServeServer, StopWithLiveClientsShutsDownCleanly)
{
    TestDaemon daemon({"Bro217"});
    daemon.start("shutdown");
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon.socketPath, &error));
    ASSERT_EQ(client.open("Bro217", 1).status, ServeClient::Status::Ok);
    daemon.server->stop(); // with an open stream and a live client
    EXPECT_EQ(daemon.service->openStreamCount(), 0u);
    // Stop is idempotent.
    daemon.server->stop();
}
