/**
 * @file
 * EngineSession tests: the chunked-execution invariant — restart();
 * feed(c0); ...; feed(ck) produces a report stream byte-identical to one
 * Engine::run over the concatenation — on every registered workload,
 * every engine mode, chunk sizes from 1 byte to whole-input, with the
 * input skip on and off; plus suspend()/resume() round trips (including
 * cross-session migration and >4 GiB stream offsets) and a randomized
 * chunk-boundary differential over random automata.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/engine.h"
#include "sim/exec_core.h"
#include "sim/session.h"
#include "support/random_nfa.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

/** Whole-input reference through Engine::run. */
SimResult
wholeRun(const FlatAutomaton &fa, EngineMode mode, bool skip,
         std::span<const uint8_t> input)
{
    Engine engine(fa, mode);
    engine.setInputSkip(skip);
    return engine.run(input);
}

/** Session config that matches Engine::run's resolution byte-for-byte:
 *  same mode, same skip, and the input's exact distinct-byte alphabet
 *  (the sparse core's universality — and so its within-position report
 *  order — is relative to the declared alphabet). */
SessionConfig
engineParityConfig(EngineMode mode, bool skip,
                   std::span<const uint8_t> input)
{
    SessionConfig config;
    config.mode = mode;
    config.inputSkip = skip;
    config.alphabet = ExecCore::distinctBytes(input);
    return config;
}

/** Feed @p input through a fresh session in @p chunk-byte pieces. */
ReportList
chunkedReports(const FlatAutomaton &fa, const SessionConfig &config,
               std::span<const uint8_t> input, size_t chunk)
{
    EngineSession session(fa, config);
    session.restart();
    size_t i = 0;
    while (i < input.size()) {
        const size_t take = std::min(chunk, input.size() - i);
        session.feed(input.subspan(i, take));
        i += take;
    }
    EXPECT_EQ(session.offset(), input.size());
    EXPECT_EQ(session.stats().cycles, input.size());
    return session.takeReports();
}

constexpr EngineMode kAllModes[] = {EngineMode::Sparse, EngineMode::Dense,
                                    EngineMode::Dfa, EngineMode::Auto};

/**
 * The headline invariant: every registered workload, every engine mode,
 * chunk sizes {1, 7, 4096, whole}, skip on and off — the chunked report
 * stream is byte-identical (same records, same order) to Engine::run,
 * and the session resolves to the same core the engine did.
 */
TEST(Session, ChunkedMatchesWholeEveryWorkloadModeChunkSkip)
{
    Rng input_rng(20180621);
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1024;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);
        FlatAutomaton fa(w.app);

        for (EngineMode mode : kAllModes) {
            for (bool skip : {false, true}) {
                const SimResult want = wholeRun(fa, mode, skip, input);
                const SessionConfig config =
                    engineParityConfig(mode, skip, input);

                const size_t chunks[] = {1, 7, 4096, input.size()};
                for (size_t chunk : chunks) {
                    SCOPED_TRACE(entry.abbr + std::string(" mode ") +
                                 engineModeName(mode) + " chunk " +
                                 std::to_string(chunk) +
                                 (skip ? " skip" : " noskip"));
                    EngineSession session(fa, config);
                    session.restart();
                    size_t i = 0;
                    while (i < input.size()) {
                        const size_t take =
                            std::min(chunk, input.size() - i);
                        session.feed(std::span(input).subspan(i, take));
                        i += take;
                    }
                    EXPECT_EQ(session.reports(), want.reports);
                    const SessionStats &st = session.stats();
                    EXPECT_EQ(st.cycles, input.size());
                    EXPECT_EQ(st.chunks,
                              (input.size() + chunk - 1) / chunk);
                    // The chunked run must land on the same core and
                    // make the same auto decision as the whole run.
                    EXPECT_EQ(st.usedDenseCore, want.usedDenseCore);
                    EXPECT_EQ(st.usedDfa, want.usedDfa);
                }
            }
        }
    }
}

/**
 * Without a declared alphabet the session runs the safe superset (every
 * byte may still arrive). Latching decisions can then differ, which may
 * reorder reports within a position — but the report *multiset* is the
 * same stream of matches.
 */
TEST(Session, DefaultAlphabetPreservesReportContent)
{
    Rng input_rng(20180621);
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1024;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);
        FlatAutomaton fa(w.app);

        ReportList want = wholeRun(fa, EngineMode::Auto, true,
                                   input).reports;
        std::sort(want.begin(), want.end());

        SessionConfig config; // alphabet = Bitset256::all()
        config.mode = EngineMode::Auto;
        ReportList got = chunkedReports(fa, config, input, 37);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want) << entry.abbr;
    }
}

/**
 * suspend()/resume() round trip, including migration to a *different*
 * session object: split the stream at assorted boundaries (first byte,
 * probe-decision cycle, mid-stream, last byte), park the stream, resume
 * it elsewhere, and require the concatenated report stream to be
 * byte-identical to the unsuspended run — in every mode.
 */
TEST(Session, SuspendResumeMigratesAcrossSessions)
{
    Rng input_rng(20180621);
    const char *abbrs[] = {"Bro217", "HM", "Snort"};
    for (const char *abbr : abbrs) {
        Workload w = generateWorkload(abbr, 7, 5);
        size_t bytes = 1024;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);
        FlatAutomaton fa(w.app);

        for (EngineMode mode : kAllModes) {
            const SimResult want = wholeRun(fa, mode, true, input);
            const SessionConfig config =
                engineParityConfig(mode, true, input);

            const size_t splits[] = {0, 1, Engine::kProbeCycles,
                                     input.size() / 2,
                                     input.size() - 1, input.size()};
            for (size_t split : splits) {
                SCOPED_TRACE(std::string(abbr) + " mode " +
                             engineModeName(mode) + " split " +
                             std::to_string(split));
                EngineSession first(fa, config);
                first.restart();
                first.feed(std::span(input).first(split));
                ReportList got = first.takeReports();
                const EngineSession::Snapshot snap = first.suspend();
                EXPECT_EQ(snap.offset, split);

                EngineSession second(fa, config);
                second.resume(snap);
                EXPECT_EQ(second.offset(), split);
                second.feed(std::span(input).subspan(split));
                const ReportList tail = second.takeReports();
                got.insert(got.end(), tail.begin(), tail.end());
                EXPECT_EQ(got, want.reports);
                EXPECT_EQ(second.stats().usedDenseCore,
                          want.usedDenseCore);
                EXPECT_EQ(second.stats().usedDfa, want.usedDfa);
            }
        }
    }
}

/**
 * The auto probe's sparse→dense handover must fire at the same global
 * cycle no matter how the stream is chunked — including a suspend in the
 * middle of the probe window — on an automaton where the handover
 * provably fires (hundreds of always-enabled starts).
 */
TEST(Session, AutoHandoverSurvivesChunkingAndSuspend)
{
    Application app("dense", "D");
    for (int i = 0; i < 300; ++i)
        app.addNfa(compileRegex("ab", "p" + std::to_string(i)));
    FlatAutomaton fa(app);
    ASSERT_GE(fa.size(), Engine::kMinDenseStates);

    std::vector<uint8_t> input(1000, 'a');
    for (size_t i = 1; i < input.size(); i += 2)
        input[i] = 'b';

    const SimResult want =
        wholeRun(fa, EngineMode::Auto, true, input);
    ASSERT_TRUE(want.usedDenseCore);

    const SessionConfig config =
        engineParityConfig(EngineMode::Auto, true, input);

    // 1-byte chunks across the probe decision.
    EXPECT_EQ(chunkedReports(fa, config, input, 1), want.reports);

    // Suspend inside the probe window, resume, finish.
    EngineSession first(fa, config);
    first.restart();
    first.feed(std::span(input).first(Engine::kProbeCycles / 2));
    ReportList got = first.takeReports();
    EngineSession second(fa, config);
    second.resume(first.suspend());
    second.feed(std::span(input).subspan(Engine::kProbeCycles / 2));
    EXPECT_TRUE(second.stats().handedOver);
    const ReportList tail = second.takeReports();
    got.insert(got.end(), tail.begin(), tail.end());
    EXPECT_EQ(got, want.reports);
}

/**
 * Report::position is a 64-bit global stream offset: resuming a parked
 * stream beyond 4 GiB keeps reporting exact positions (the satellite
 * that widened Report::position from uint32_t).
 */
TEST(Session, ResumedStreamReportsSixtyFourBitPositions)
{
    // A guaranteed-reporting automaton: "ab" matches every other byte
    // of an a/b-alternating input, and one NFA determinizes trivially.
    Application app("wide", "W");
    app.addNfa(compileRegex("ab", "p"));
    FlatAutomaton fa(app);
    std::vector<uint8_t> input(512, 'a');
    for (size_t i = 1; i < input.size(); i += 2)
        input[i] = 'b';

    for (EngineMode mode :
         {EngineMode::Sparse, EngineMode::Dense, EngineMode::Dfa}) {
        const SessionConfig config =
            engineParityConfig(mode, false, input);

        EngineSession zero(fa, config);
        zero.restart();
        zero.feed(input);
        const ReportList base = zero.takeReports();
        ASSERT_FALSE(base.empty())
            << "test needs a reporting workload";

        // Park a fresh stream and pretend 8 GiB already went by: the
        // snapshot's offset is the only thing that moves.
        EngineSession fresh(fa, config);
        fresh.restart();
        EngineSession::Snapshot snap = fresh.suspend();
        const uint64_t kFar = 1ull << 33;
        snap.offset = kFar;
        snap.stats.cycles = kFar;

        EngineSession far(fa, config);
        far.resume(snap);
        far.feed(input);
        const ReportList &got = far.reports();
        ASSERT_EQ(got.size(), base.size()) << engineModeName(mode);
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].position, base[i].position + kFar);
            EXPECT_EQ(got[i].state, base[i].state);
        }
    }
}

/** Random automata, random chunk partitions: chunked == whole. */
TEST(Session, RandomizedChunkBoundaryDifferential)
{
    Rng rng(20260813);
    for (int trial = 0; trial < 24; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.universalProb = trial % 2 == 0 ? 0.3 : 0.1;
        params.extraStartProb = 0.4;
        Application app = testing::randomApplication(
            rng, 2 + rng.index(12), params);
        const std::vector<uint8_t> input =
            testing::randomInput(rng, 500, params.alphabetSize);
        FlatAutomaton fa(app);

        const EngineMode mode = kAllModes[trial % 4];
        const bool skip = trial % 3 == 0;
        const SimResult want = wholeRun(fa, mode, skip, input);
        const SessionConfig config =
            engineParityConfig(mode, skip, input);

        // A random chunk partition of the stream, suspending and
        // migrating the session at one random boundary along the way.
        EngineSession session(fa, config);
        session.restart();
        ReportList got;
        size_t i = 0;
        const size_t migrate_at = rng.index(input.size());
        bool migrated = false;
        std::unique_ptr<EngineSession> owner;
        EngineSession *live = &session;
        while (i < input.size()) {
            if (!migrated && i >= migrate_at) {
                const ReportList part = live->takeReports();
                got.insert(got.end(), part.begin(), part.end());
                owner = std::make_unique<EngineSession>(fa, config);
                owner->resume(live->suspend());
                live = owner.get();
                migrated = true;
            }
            const size_t take = std::min<size_t>(
                1 + rng.index(97), input.size() - i);
            live->feed(std::span(input).subspan(i, take));
            i += take;
        }
        const ReportList part = live->takeReports();
        got.insert(got.end(), part.begin(), part.end());
        EXPECT_EQ(got, want.reports) << "trial " << trial << " mode "
                                     << engineModeName(mode);
    }
}

/** resolvedMode() reports the core actually running. */
TEST(Session, ResolvedModeTracksExecution)
{
    Rng input_rng(20180621);
    Workload w = generateWorkload("Bro217", 7, 5);
    size_t bytes = 512;
    if (w.inputBytesCap > 0)
        bytes = std::min(bytes, w.inputBytesCap);
    const std::vector<uint8_t> input =
        synthesizeInput(w.input, bytes, input_rng);
    FlatAutomaton fa(w.app);

    for (EngineMode mode : kAllModes) {
        SessionConfig config = engineParityConfig(mode, true, input);
        EngineSession session(fa, config);
        session.restart();
        session.feed(input);
        const EngineMode resolved = session.resolvedMode();
        const SessionStats &st = session.stats();
        switch (resolved) {
        case EngineMode::Sparse:
            EXPECT_FALSE(st.usedDenseCore);
            EXPECT_FALSE(st.usedDfa);
            break;
        case EngineMode::Dense:
            EXPECT_TRUE(st.usedDenseCore);
            break;
        case EngineMode::Dfa:
            EXPECT_TRUE(st.usedDfa);
            break;
        case EngineMode::Auto:
            ADD_FAILURE() << "resolvedMode may never stay Auto after "
                             "a restart";
            break;
        }
        // Engine::resolvedMode surfaces the same resolution.
        Engine engine(fa, mode);
        engine.setInputSkip(true);
        engine.run(input);
        EXPECT_EQ(engine.resolvedMode(), resolved)
            << engineModeName(mode);
    }
}

/** Empty chunks and empty streams are legal no-ops. */
TEST(Session, EmptyChunksAreNoOps)
{
    Rng input_rng(20180621);
    Workload w = generateWorkload("EM", 7, 5);
    size_t bytes = 256;
    if (w.inputBytesCap > 0)
        bytes = std::min(bytes, w.inputBytesCap);
    const std::vector<uint8_t> input =
        synthesizeInput(w.input, bytes, input_rng);
    FlatAutomaton fa(w.app);

    const SimResult want =
        wholeRun(fa, EngineMode::Auto, true, input);
    const SessionConfig config =
        engineParityConfig(EngineMode::Auto, true, input);

    EngineSession session(fa, config);
    session.restart();
    session.feed({});
    session.feed(std::span(input).first(input.size() / 2));
    session.feed({});
    session.feed(std::span(input).subspan(input.size() / 2));
    session.feed({});
    EXPECT_EQ(session.offset(), input.size());
    EXPECT_EQ(session.reports(), want.reports);

    // A stream of nothing reports nothing.
    EngineSession empty(fa, config);
    empty.restart();
    empty.feed({});
    EXPECT_EQ(empty.offset(), 0u);
    EXPECT_TRUE(empty.reports().empty());
}

} // namespace
} // namespace sparseap
