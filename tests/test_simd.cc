/**
 * @file
 * SIMD kernel tests: every tier the CPU supports must compute exactly
 * what the scalar reference computes, at the op level (bitAnd/orInto/
 * clear/popcount over awkward lengths and offsets) and at the kernel
 * level (byte-identical per-cycle enabled sets and identical reports
 * from the dense core whichever ISA its sweeps run at).
 */

#include <algorithm>
#include <bit>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vec.h"
#include "sim/dense_core.h"
#include "sim/engine.h"
#include "support/random_nfa.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

using simd::Isa;

/** Restore the process-wide ISA override when a test scope ends. */
struct IsaGuard
{
    ~IsaGuard() { simd::setIsa(simd::bestIsa()); }
};

std::vector<Isa>
supportedIsas()
{
    std::vector<Isa> isas;
    for (Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512})
        if (simd::isaSupported(isa))
            isas.push_back(isa);
    return isas;
}

std::vector<uint64_t>
randomWords(Rng &rng, size_t n)
{
    std::vector<uint64_t> v(n);
    for (uint64_t &w : v)
        w = rng.uniform(0, ~uint64_t{0});
    return v;
}

/** Every supported tier vs the scalar reference, op by op. */
TEST(Simd, OpsMatchScalarOnAllSupportedTiers)
{
    IsaGuard guard;
    const std::vector<Isa> isas = supportedIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), Isa::Scalar);

    // Lengths straddling every vector width and its tail handling.
    const size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                              31, 32, 33, 63, 64, 65, 127, 128, 200};
    Rng rng(20260808);
    for (Isa isa : isas) {
        ASSERT_TRUE(simd::setIsa(isa)) << simd::isaName(isa);
        const simd::Ops &o = simd::ops();
        ASSERT_EQ(o.isa, isa);
        EXPECT_EQ(simd::activeIsa(), isa);

        for (size_t n : lengths) {
            // Offset slices: 8-byte-aligned but not 64-byte-aligned
            // pointers must work (the kernels use unaligned loads).
            for (size_t off : {size_t{0}, size_t{1}, size_t{3}}) {
                const std::vector<uint64_t> a = randomWords(rng, n + off);
                const std::vector<uint64_t> b = randomWords(rng, n + off);

                std::vector<uint64_t> dst(n + off, 0xdeadbeefcafef00dull);
                o.bitAnd(dst.data() + off, a.data() + off, b.data() + off,
                         n);
                uint64_t want_pop = 0;
                for (size_t i = 0; i < n; ++i) {
                    EXPECT_EQ(dst[off + i], a[off + i] & b[off + i])
                        << simd::isaName(isa) << " n=" << n;
                    want_pop +=
                        std::popcount(a[off + i] & b[off + i]);
                }

                EXPECT_EQ(o.popcount(dst.data() + off, n), want_pop)
                    << simd::isaName(isa) << " n=" << n;

                std::vector<uint64_t> acc = a;
                o.orInto(acc.data() + off, b.data() + off, n);
                for (size_t i = 0; i < n; ++i)
                    EXPECT_EQ(acc[off + i], a[off + i] | b[off + i])
                        << simd::isaName(isa) << " n=" << n;

                std::vector<uint64_t> an = a;
                o.andNotInto(an.data() + off, b.data() + off, n);
                for (size_t i = 0; i < n; ++i)
                    EXPECT_EQ(an[off + i], a[off + i] & ~b[off + i])
                        << simd::isaName(isa) << " n=" << n;

                std::vector<uint64_t> sh = a;
                o.shiftOrInto(sh.data() + off, b.data() + off, n);
                for (size_t i = 0; i < n; ++i) {
                    const uint64_t carry =
                        i == 0 ? 0 : b[off + i - 1] >> 63;
                    EXPECT_EQ(sh[off + i],
                              a[off + i] | (b[off + i] << 1) | carry)
                        << simd::isaName(isa) << " n=" << n;
                }

                if (n > 0) {
                    // Sparse source: nonzeroWords must see exactly the
                    // nonzero words, including an all-zero tail word.
                    std::vector<uint64_t> src(n + off, 0);
                    for (size_t i = 0; i < n; i += 3)
                        src[off + i] = rng.uniform(1, ~uint64_t{0});
                    std::vector<uint64_t> sum((n + 63) / 64,
                                              0xffffffffffffffffull);
                    o.nonzeroWords(sum.data(), src.data() + off, n);
                    for (size_t i = 0; i < n; ++i)
                        EXPECT_EQ((sum[i >> 6] >> (i & 63)) & 1,
                                  src[off + i] != 0 ? 1u : 0u)
                            << simd::isaName(isa) << " n=" << n;
                    // Tail bits beyond n are zero, not stale.
                    for (size_t i = n; i < sum.size() * 64; ++i)
                        EXPECT_EQ((sum[i >> 6] >> (i & 63)) & 1, 0u)
                            << simd::isaName(isa) << " n=" << n;
                }

                o.clear(acc.data() + off, n);
                for (size_t i = 0; i < n; ++i)
                    EXPECT_EQ(acc[off + i], 0u);
                // Words before the slice stay untouched.
                for (size_t i = 0; i < off; ++i)
                    EXPECT_EQ(acc[i], a[i]);
            }

            // In-place: dst aliasing a.
            std::vector<uint64_t> a = randomWords(rng, n);
            const std::vector<uint64_t> b = randomWords(rng, n);
            const std::vector<uint64_t> orig = a;
            o.bitAnd(a.data(), a.data(), b.data(), n);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(a[i], orig[i] & b[i]);
        }
    }
}

/** The resolved default is the best tier the CPU has. */
TEST(Simd, DefaultResolvesToBestTier)
{
    IsaGuard guard;
    ASSERT_TRUE(simd::setIsa(simd::bestIsa()));
    EXPECT_EQ(simd::activeIsa(), simd::bestIsa());
    EXPECT_TRUE(simd::isaSupported(Isa::Scalar));
    EXPECT_STREQ(simd::isaName(Isa::Scalar), "scalar");
    EXPECT_STREQ(simd::isaName(Isa::Avx512), "avx512");
}

/** Per-cycle dense-core trace under one ISA. */
struct DenseTrace
{
    std::vector<std::vector<uint64_t>> enabled; ///< per cycle
    std::vector<uint64_t> permanent;            ///< after the run
    ReportList reports;
};

DenseTrace
traceRun(const FlatAutomaton &fa, std::span<const uint8_t> input)
{
    DenseCore core(fa);
    core.reset(true);
    DenseTrace t;
    for (size_t i = 0; i < input.size(); ++i) {
        core.step(input[i], static_cast<uint32_t>(i), &t.reports);
        const auto e = core.enabledWords();
        t.enabled.emplace_back(e.begin(), e.end());
    }
    const auto p = core.permanentWords();
    t.permanent.assign(p.begin(), p.end());
    std::sort(t.reports.begin(), t.reports.end());
    return t;
}

/**
 * Forcing each supported ISA must leave the dense core's whole visible
 * state byte-identical every cycle — not just the reports.
 */
TEST(Simd, DenseCoreByteIdenticalAcrossIsas)
{
    IsaGuard guard;
    const std::vector<Isa> isas = supportedIsas();

    Rng rng(20260809);
    for (int trial = 0; trial < 12; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.universalProb = trial % 2 == 0 ? 0.3 : 0.1;
        params.extraStartProb = trial % 3 == 0 ? 0.4 : 0.0;
        Application app = testing::randomApplication(
            rng, 2 + rng.index(8), params);
        const std::vector<uint8_t> input =
            testing::randomInput(rng, 300, params.alphabetSize);
        FlatAutomaton fa(app);

        ASSERT_TRUE(simd::setIsa(Isa::Scalar));
        const DenseTrace want = traceRun(fa, input);
        for (Isa isa : isas) {
            ASSERT_TRUE(simd::setIsa(isa));
            const DenseTrace got = traceRun(fa, input);
            EXPECT_EQ(got.enabled, want.enabled)
                << simd::isaName(isa) << " trial " << trial;
            EXPECT_EQ(got.permanent, want.permanent)
                << simd::isaName(isa) << " trial " << trial;
            EXPECT_EQ(got.reports, want.reports)
                << simd::isaName(isa) << " trial " << trial;
        }
    }
}

/** Engine-level gate on registered workloads, every ISA vs sparse. */
TEST(Simd, PropertyEngineMatchesSparseUnderEveryIsa)
{
    IsaGuard guard;
    const std::vector<Isa> isas = supportedIsas();

    Rng input_rng(20180621);
    size_t checked = 0;
    for (const auto &entry : appCatalog()) {
        if (++checked % 3 != 0) // every third workload keeps this fast
            continue;
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1024;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);
        FlatAutomaton fa(w.app);

        Engine sparse(fa, EngineMode::Sparse);
        ReportList want = sparse.run(input).reports;
        std::sort(want.begin(), want.end());

        for (Isa isa : isas) {
            ASSERT_TRUE(simd::setIsa(isa));
            Engine dense(fa, EngineMode::Dense); // caches the new table
            ReportList got = dense.run(input).reports;
            std::sort(got.begin(), got.end());
            EXPECT_EQ(got, want)
                << entry.abbr << " under " << simd::isaName(isa);
        }
    }
    ASSERT_GT(checked, 0u);
}

} // namespace
} // namespace sparseap
