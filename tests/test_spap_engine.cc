/** @file Tests for the SpAP-mode engine (Algorithm 1). */

#include <gtest/gtest.h>

#include "spap/spap_engine.h"

namespace sparseap {
namespace {

/** A start-free chain NFA: s0 -> s1 -> ... (cold-fragment shaped). */
Application
coldChain(const std::string &symbols, bool last_reports = true)
{
    Application app("cold", "C");
    Nfa nfa("chain");
    for (size_t i = 0; i < symbols.size(); ++i) {
        nfa.addState(SymbolSet::single(static_cast<uint8_t>(symbols[i])),
                     StartKind::None,
                     last_reports && i + 1 == symbols.size());
        if (i > 0)
            nfa.addEdge(static_cast<StateId>(i - 1),
                        static_cast<StateId>(i));
    }
    nfa.finalize(false);
    app.addNfa(std::move(nfa));
    return app;
}

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

TEST(SpapEngine, NoEventsConsumesNothing)
{
    Application app = coldChain("abc");
    FlatAutomaton fa(app);
    SpapResult r = runSpapMode(fa, bytes("abcabc"), {});
    EXPECT_EQ(r.consumedCycles, 0u);
    EXPECT_EQ(r.enableStalls, 0u);
    EXPECT_TRUE(r.reports.empty());
}

TEST(SpapEngine, JumpSkipsIdlePrefix)
{
    Application app = coldChain("abc");
    FlatAutomaton fa(app);
    // Enable state 0 right before position 10 where "abc" begins.
    const std::string input = "zzzzzzzzzzabczzz";
    std::vector<SpapEvent> events = {{10, 0}};
    SpapResult r = runSpapMode(fa, bytes(input), events);
    EXPECT_EQ(r.jumps, 1u);
    ASSERT_EQ(r.reports.size(), 1u);
    EXPECT_EQ(r.reports[0].position, 12u); // 'c' at position 12
    // Consumed: positions 10,11,12,13 (dies at 13 when 'z' mismatches...
    // actually at 13 the enabled set is empty already after reporting, so
    // only 10..12 are consumed plus the check at 13 jumps/breaks).
    EXPECT_LE(r.consumedCycles, 4u);
    EXPECT_GE(r.consumedCycles, 3u);
}

TEST(SpapEngine, SimultaneousEnablesStall)
{
    Application app("cold", "C");
    for (int n = 0; n < 3; ++n) {
        Nfa nfa("c");
        nfa.addState(SymbolSet::single('x'), StartKind::None, true);
        nfa.finalize(false);
        app.addNfa(std::move(nfa));
    }
    FlatAutomaton fa(app);
    // Three events at the same position: two stalls (one enable is free).
    std::vector<SpapEvent> events = {{5, 0}, {5, 1}, {5, 2}};
    SpapResult r = runSpapMode(fa, bytes("zzzzzxzz"), events);
    EXPECT_EQ(r.enableStalls, 2u);
    EXPECT_EQ(r.reports.size(), 3u);
    EXPECT_EQ(r.totalCycles(), r.consumedCycles + 2);
}

TEST(SpapEngine, EventsAtDifferentPositionsDoNotStall)
{
    Application app = coldChain("ab", false);
    FlatAutomaton fa(app);
    std::vector<SpapEvent> events = {{1, 0}, {4, 0}};
    SpapResult r = runSpapMode(fa, bytes("zazzab"), events);
    EXPECT_EQ(r.enableStalls, 0u);
}

TEST(SpapEngine, EnableIsIdempotent)
{
    Application app = coldChain("ab");
    FlatAutomaton fa(app);
    // Duplicate events for the same state at one position: stall counted,
    // but the state is enabled once (single report).
    std::vector<SpapEvent> events = {{0, 0}, {0, 0}};
    SpapResult r = runSpapMode(fa, bytes("ab"), events);
    EXPECT_EQ(r.enableStalls, 1u);
    ASSERT_EQ(r.reports.size(), 1u);
}

TEST(SpapEngine, EventBeyondInputIgnored)
{
    Application app = coldChain("ab");
    FlatAutomaton fa(app);
    std::vector<SpapEvent> events = {{100, 0}};
    SpapResult r = runSpapMode(fa, bytes("ab"), events);
    EXPECT_TRUE(r.reports.empty());
    EXPECT_EQ(r.consumedCycles, 0u);
}

TEST(SpapEngine, ThreadDiesThenJumpsAgain)
{
    Application app = coldChain("ab");
    FlatAutomaton fa(app);
    // First event starts a thread that dies at position 3 ('z'); the
    // engine must jump to 6 rather than walk 4..5.
    std::vector<SpapEvent> events = {{2, 0}, {6, 0}};
    SpapResult r = runSpapMode(fa, bytes("zzabzzab"), events);
    EXPECT_EQ(r.jumps, 2u);
    EXPECT_EQ(r.reports.size(), 2u);
    // Consumed: 2,3 then 6,7 -> 4 cycles (the kill-check at 4 is a jump).
    EXPECT_EQ(r.consumedCycles, 4u);
}

TEST(SpapEngine, RequiresStartFreeAutomaton)
{
    Application app("bad", "B");
    Nfa nfa("s");
    nfa.addState(SymbolSet::all(), StartKind::AllInput);
    nfa.finalize();
    app.addNfa(std::move(nfa));
    FlatAutomaton fa(app);
    EXPECT_DEATH(runSpapMode(fa, bytes("x"), {}), "start-free");
}

TEST(SpapEngine, UnsortedEventsDie)
{
    Application app = coldChain("ab");
    FlatAutomaton fa(app);
    std::vector<SpapEvent> events = {{5, 0}, {1, 0}};
    EXPECT_DEATH(runSpapMode(fa, bytes("zzzzzzzz"), events), "sorted");
}

/** All three core modes agree, including the compressed dense path. */
TEST(SpapEngine, AllCoreModesEmitIdenticalResults)
{
    Application app = coldChain("abab");
    FlatAutomaton fa(app);
    const std::string input = "zzababzzzabababz";
    std::vector<SpapEvent> events = {{2, 0}, {9, 0}, {11, 0}};
    const SpapResult want =
        runSpapMode(fa, bytes(input), events, EngineMode::Sparse);
    for (EngineMode mode : {EngineMode::Dense, EngineMode::Auto}) {
        const SpapResult got = runSpapMode(fa, bytes(input), events, mode);
        EXPECT_EQ(got.reports, want.reports);
        EXPECT_EQ(got.consumedCycles, want.consumedCycles);
        EXPECT_EQ(got.jumps, want.jumps);
    }
}

} // namespace
} // namespace sparseap
