/** @file Tests for the numeric helpers in common/stats. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace sparseap {
namespace {

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, ScaleInvariance)
{
    // geomean(c*x) = c * geomean(x)
    std::vector<double> xs = {1.5, 2.25, 9.0, 0.5};
    std::vector<double> scaled;
    for (double x : xs)
        scaled.push_back(3.0 * x);
    EXPECT_NEAR(geomean(scaled), 3.0 * geomean(xs), 1e-9);
}

TEST(Mean, Basic)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> neg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> c = {5, 5, 5};
    EXPECT_EQ(pearson(x, c), 0.0);
    EXPECT_EQ(pearson(c, x), 0.0);
}

TEST(Pearson, ShortSeriesIsZero)
{
    EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, BoundedByOne)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> x, y;
        for (int i = 0; i < 50; ++i) {
            x.push_back(rng.real());
            y.push_back(rng.real());
        }
        const double r = pearson(x, y);
        EXPECT_GE(r, -1.0 - 1e-9);
        EXPECT_LE(r, 1.0 + 1e-9);
    }
}

TEST(Accumulator, Empty)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator a;
    for (double v : {3.0, -1.0, 7.0, 5.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.min(), -1.0);
    EXPECT_EQ(a.max(), 7.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.sum(), 14.0);
}

TEST(Accumulator, VarianceKnownValues)
{
    // {2, 4, 4, 4, 5, 5, 7, 9}: the textbook example with population
    // variance 4 and stddev 2.
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, VarianceDegenerateCases)
{
    Accumulator empty;
    EXPECT_EQ(empty.variance(), 0.0);
    EXPECT_EQ(empty.stddev(), 0.0);

    Accumulator one;
    one.add(42.0);
    EXPECT_EQ(one.variance(), 0.0);

    Accumulator constant;
    for (int i = 0; i < 10; ++i)
        constant.add(3.25);
    EXPECT_NEAR(constant.variance(), 0.0, 1e-12);
}

TEST(Accumulator, VarianceStableForLargeMean)
{
    // Welford's recurrence must survive a mean that dwarfs the spread;
    // the naive sum-of-squares formulation loses all significant digits
    // here (1e12 +- 1).
    Accumulator a;
    for (double v : {1e12 - 1.0, 1e12, 1e12 + 1.0})
        a.add(v);
    EXPECT_NEAR(a.variance(), 2.0 / 3.0, 1e-6);
}

TEST(Accumulator, VarianceMatchesTwoPassFormula)
{
    Rng rng(11);
    std::vector<double> xs;
    Accumulator a;
    for (int i = 0; i < 200; ++i) {
        const double v = rng.real() * 100.0;
        xs.push_back(v);
        a.add(v);
    }
    const double m = mean(xs);
    double sq = 0.0;
    for (double v : xs)
        sq += (v - m) * (v - m);
    EXPECT_NEAR(a.variance(), sq / xs.size(), 1e-9);
}

TEST(Histogram, BucketOfIsBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(~0ull), 64u);
}

TEST(Histogram, BucketBoundsRoundTrip)
{
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLow(b)), b);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHigh(b)), b);
        EXPECT_LE(Histogram::bucketLow(b), Histogram::bucketHigh(b));
    }
}

TEST(Histogram, CountSumMinMaxMean)
{
    Histogram h;
    for (uint64_t v : {0ull, 3ull, 10ull, 10ull, 1000ull})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1023u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.mean(), 1023.0 / 5.0, 1e-12);
}

TEST(Histogram, EmptyQuantilesAreZero)
{
    Histogram h;
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, QuantileWithinBucketBounds)
{
    // A log-bucketed quantile cannot name the exact sample, but it must
    // land inside the bucket that holds the true quantile.
    Rng rng(23);
    Histogram h;
    std::vector<uint64_t> xs;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.uniform(0, 99999);
        xs.push_back(v);
        h.add(v);
    }
    std::sort(xs.begin(), xs.end());
    for (double q : {0.5, 0.95, 0.99}) {
        const uint64_t exact =
            xs[static_cast<size_t>(q * (xs.size() - 1))];
        const size_t b = Histogram::bucketOf(exact);
        const double est = h.quantile(q);
        EXPECT_GE(est, static_cast<double>(Histogram::bucketLow(b)))
            << "q=" << q;
        EXPECT_LE(est, static_cast<double>(Histogram::bucketHigh(b)) + 1)
            << "q=" << q;
    }
}

TEST(Histogram, QuantileMonotoneInQ)
{
    Rng rng(29);
    Histogram h;
    for (int i = 0; i < 500; ++i)
        h.add(rng.uniform(0, 4095));
    double prev = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double est = h.quantile(q);
        EXPECT_GE(est, prev) << "q=" << q;
        prev = est;
    }
}

TEST(Histogram, SingleValueQuantiles)
{
    Histogram h;
    for (int i = 0; i < 7; ++i)
        h.add(64);
    // Every sample sits in bucket 7 ([64, 127]); all quantiles must too.
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_GE(h.quantile(q), 64.0);
        EXPECT_LE(h.quantile(q), 128.0);
    }
}

TEST(Histogram, MergeEqualsCombinedFeed)
{
    Rng rng(31);
    Histogram a, b, combined;
    for (int i = 0; i < 300; ++i) {
        const uint64_t v = rng.uniform(0, 99999);
        (i % 2 ? a : b).add(v);
        combined.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_EQ(a.buckets(), combined.buckets());
}

} // namespace
} // namespace sparseap
