/** @file Tests for the numeric helpers in common/stats. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace sparseap {
namespace {

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, ScaleInvariance)
{
    // geomean(c*x) = c * geomean(x)
    std::vector<double> xs = {1.5, 2.25, 9.0, 0.5};
    std::vector<double> scaled;
    for (double x : xs)
        scaled.push_back(3.0 * x);
    EXPECT_NEAR(geomean(scaled), 3.0 * geomean(xs), 1e-9);
}

TEST(Mean, Basic)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> neg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> c = {5, 5, 5};
    EXPECT_EQ(pearson(x, c), 0.0);
    EXPECT_EQ(pearson(c, x), 0.0);
}

TEST(Pearson, ShortSeriesIsZero)
{
    EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, BoundedByOne)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> x, y;
        for (int i = 0; i < 50; ++i) {
            x.push_back(rng.real());
            y.push_back(rng.real());
        }
        const double r = pearson(x, y);
        EXPECT_GE(r, -1.0 - 1e-9);
        EXPECT_LE(r, 1.0 + 1e-9);
    }
}

TEST(Accumulator, Empty)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator a;
    for (double v : {3.0, -1.0, 7.0, 5.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.min(), -1.0);
    EXPECT_EQ(a.max(), 7.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.sum(), 14.0);
}

} // namespace
} // namespace sparseap
