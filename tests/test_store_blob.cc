/**
 * @file
 * Blob-container robustness: section round-trips, typed-view element
 * checks, and the validation gauntlet — truncations, bad magic, foreign
 * versions, and random bit-flip fault injection must either be rejected
 * with a clear error or provably leave every decoded byte intact (flips
 * in uncovered header padding); no input may crash the loader.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "store/blob.h"

namespace sparseap {
namespace store {
namespace {

/** A small blob with typed, string, and empty sections. */
std::vector<uint8_t>
sampleImage()
{
    BlobWriter w(ArtifactKind::Raw, 0xfeedfacecafebeefull);
    const std::vector<uint32_t> ints{1, 2, 3, 500, 1u << 30};
    const std::vector<uint64_t> words{~0ull, 0, 0x123456789abcdef0ull};
    w.addSpan<uint32_t>(1, {ints.data(), ints.size()});
    w.addString(2, "hello, store");
    w.addSpan<uint64_t>(7, {words.data(), words.size()});
    w.addSpan<uint32_t>(9, {}); // legitimately empty section
    return w.finalize();
}

TEST(StoreBlob, RoundTripsSections)
{
    std::string error;
    auto blob = BlobView::fromBuffer(sampleImage(), &error);
    ASSERT_NE(blob, nullptr) << error;

    EXPECT_EQ(blob->kind(), ArtifactKind::Raw);
    EXPECT_EQ(blob->digest(), 0xfeedfacecafebeefull);
    EXPECT_EQ(blob->sections().size(), 4u);

    const auto ints = blob->sectionAs<uint32_t>(1);
    ASSERT_EQ(ints.size(), 5u);
    EXPECT_EQ(ints[3], 500u);
    EXPECT_EQ(ints[4], 1u << 30);

    const auto str = blob->sectionBytes(2);
    EXPECT_EQ(std::string(str.begin(), str.end()), "hello, store");

    const auto words = blob->sectionAs<uint64_t>(7);
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(words[0], ~0ull);

    // Empty section: present, zero elements.
    EXPECT_NE(blob->findSection(9), nullptr);
    EXPECT_EQ(blob->sectionAs<uint32_t>(9).size(), 0u);

    // Sections start on the format alignment so mmap'ed word vectors
    // land on cache lines.
    for (const SectionEntry &e : blob->sections())
        EXPECT_EQ(e.offset % kSectionAlign, 0u) << e.id;
}

TEST(StoreBlob, TypedViewEnforcesElementSize)
{
    std::string error;
    auto blob = BlobView::fromBuffer(sampleImage(), &error);
    ASSERT_NE(blob, nullptr) << error;

    // Section 1 was written with 4-byte elements; a 8-byte view lies.
    EXPECT_TRUE(blob->sectionAs<uint64_t>(1).empty());
    // Absent ids yield empty views, not errors.
    EXPECT_EQ(blob->findSection(42), nullptr);
    EXPECT_TRUE(blob->sectionAs<uint32_t>(42).empty());
    EXPECT_TRUE(blob->sectionBytes(42).empty());
}

TEST(StoreBlob, RejectsTruncation)
{
    const std::vector<uint8_t> image = sampleImage();
    for (size_t keep :
         {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{100},
          image.size() / 2, image.size() - 1}) {
        std::string error;
        auto blob = BlobView::fromBuffer(
            std::vector<uint8_t>(image.begin(), image.begin() + keep),
            &error);
        EXPECT_EQ(blob, nullptr) << "kept " << keep << " bytes";
        EXPECT_FALSE(error.empty());
    }
}

TEST(StoreBlob, RejectsBadMagicAndVersion)
{
    std::vector<uint8_t> image = sampleImage();
    std::string error;

    std::vector<uint8_t> bad_magic = image;
    bad_magic[0] ^= 0xff;
    EXPECT_EQ(BlobView::fromBuffer(std::move(bad_magic), &error), nullptr);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    std::vector<uint8_t> bad_version = image;
    bad_version[8] = static_cast<uint8_t>(kFormatVersion + 1);
    EXPECT_EQ(BlobView::fromBuffer(std::move(bad_version), &error),
              nullptr);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

/**
 * Random single-bit flips anywhere in the file: validation must reject
 * the blob, or — when the flip lands in bytes no decoder reads (header
 * padding, the unchecked digest/kind header fields) — every section
 * payload must still read back identical to the pristine blob.
 */
TEST(StoreBlob, FaultInjectionBitFlips)
{
    const std::vector<uint8_t> image = sampleImage();
    std::string error;
    auto pristine = BlobView::fromBuffer(image, &error);
    ASSERT_NE(pristine, nullptr) << error;

    Rng rng(20181020);
    size_t rejected = 0;
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<uint8_t> mutated = image;
        const size_t byte = rng.index(mutated.size());
        mutated[byte] ^= static_cast<uint8_t>(1u << rng.index(8));

        auto blob = BlobView::fromBuffer(std::move(mutated), &error);
        if (!blob) {
            ++rejected;
            EXPECT_FALSE(error.empty());
            continue;
        }
        for (const SectionEntry &e : pristine->sections()) {
            const auto want = pristine->sectionBytes(e.id);
            const auto got = blob->sectionBytes(e.id);
            ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(),
                                   got.end()))
                << "flip in byte " << byte << " altered section " << e.id
                << " without failing validation";
        }
    }
    // The payload is checksummed, so the vast majority must be caught.
    EXPECT_GT(rejected, 250u);
}

TEST(StoreBlob, FaultInjectionRandomTruncations)
{
    const std::vector<uint8_t> image = sampleImage();
    Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        const size_t keep = rng.index(image.size()); // always < size
        std::string error;
        auto blob = BlobView::fromBuffer(
            std::vector<uint8_t>(image.begin(), image.begin() + keep),
            &error);
        EXPECT_EQ(blob, nullptr) << "kept " << keep;
    }
}

TEST(StoreBlob, OpensFromDiskAndRejectsDamagedFiles)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "sparseap_blob_test";
    fs::create_directories(dir);
    const std::string path = (dir / "sample.apb").string();

    const std::vector<uint8_t> image = sampleImage();
    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, image, &error)) << error;
    // The temp file of the atomic write must be gone.
    size_t entries = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        ++entries;
    EXPECT_EQ(entries, 1u);

    auto blob = BlobView::open(path, &error);
    ASSERT_NE(blob, nullptr) << error;
    EXPECT_EQ(blob->digest(), 0xfeedfacecafebeefull);
    const auto ints = blob->sectionAs<uint32_t>(1);
    ASSERT_EQ(ints.size(), 5u);
    EXPECT_EQ(ints[0], 1u);

    // Truncated on disk -> rejected with the path in the error.
    const std::string cut = (dir / "cut.apb").string();
    ASSERT_TRUE(atomicWriteFile(
        cut, {image.data(), image.size() - 7}, &error));
    EXPECT_EQ(BlobView::open(cut, &error), nullptr);
    EXPECT_NE(error.find("cut.apb"), std::string::npos) << error;

    // Not a blob at all.
    const std::string junk = (dir / "junk.apb").string();
    const std::vector<uint8_t> garbage(300, 0x5a);
    ASSERT_TRUE(atomicWriteFile(junk, garbage, &error));
    EXPECT_EQ(BlobView::open(junk, &error), nullptr);

    // Missing file and directories fail gracefully, never crash.
    EXPECT_EQ(BlobView::open((dir / "absent.apb").string(), &error),
              nullptr);
    EXPECT_EQ(BlobView::open(dir.string(), &error), nullptr);

    fs::remove_all(dir);
}

} // namespace
} // namespace store
} // namespace sparseap
