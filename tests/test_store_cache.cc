/**
 * @file
 * Artifact-cache behavior: racing writers on one key commit atomically
 * with both readers valid, a mini experiment sweep is byte-identical with
 * the cache off, cold and warm (and at any SPARSEAP_JOBS), the warm pass
 * never stores, wrong-kind/wrong-name blobs degrade to misses, and gc
 * sweeps corrupted blobs and stale temp files.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/sparseap.h"

namespace sparseap {
namespace {

namespace fs = std::filesystem;
using store::ArtifactCache;
using store::ArtifactKind;
using store::BlobView;
using store::BlobWriter;
using store::CacheStats;
using store::ScopedCacheOverride;

// globalOptions() is parsed once per process, so pin the environment to a
// small deterministic configuration before the first ExperimentRunner,
// and make sure an ambient cache dir cannot leak into the test.
const bool kEnvReady = [] {
    setenv("SPARSEAP_INPUT_KB", "4", 1);
    setenv("SPARSEAP_SCALE", "3", 1);
    setenv("SPARSEAP_APPS", "EM,Rg05,RF2,CAV", 1);
    setenv("SPARSEAP_VERBOSE", "1", 1);
    unsetenv("SPARSEAP_CACHE_DIR");
    unsetenv("SPARSEAP_CACHE");
    unsetenv("SPARSEAP_JSON");
    return true;
}();

fs::path
freshDir(const char *name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

size_t
journalLines(const ArtifactCache &cache)
{
    std::ifstream in(cache.journalPath());
    size_t lines = 0;
    for (std::string line; std::getline(in, line);)
        ++lines;
    return lines;
}

BlobWriter
sampleWriter(uint64_t digest, uint32_t fill)
{
    BlobWriter w(ArtifactKind::Raw, digest);
    std::vector<uint32_t> payload(64, fill);
    w.addSpan<uint32_t>(1, {payload.data(), payload.size()});
    return w;
}

TEST(StoreCache, DisabledCacheIsANoop)
{
    const ArtifactCache cache("");
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.load(ArtifactKind::Raw, 5), nullptr);
    EXPECT_FALSE(cache.store(sampleWriter(5, 1)));
    EXPECT_TRUE(cache.listObjects().empty());
    EXPECT_EQ(cache.gc().scanned, 0u);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.stores, 0u);
}

TEST(StoreCache, RacingWritersOneObjectBothReadersValid)
{
    ASSERT_TRUE(kEnvReady);
    const fs::path dir = freshDir("sparseap_cache_race");
    const ArtifactCache cache(dir.string());
    const uint64_t digest = 0xabcdef0123456789ull;

    // Same key, identical content (as racing pipeline writers produce),
    // many writers at once: every commit is temp-file + atomic rename,
    // so readers never observe a torn blob.
    constexpr int kWriters = 8;
    std::vector<std::thread> threads;
    std::atomic<int> valid_reads{0};
    threads.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([&] {
            EXPECT_TRUE(cache.store(sampleWriter(digest, 77)));
            auto blob = cache.load(ArtifactKind::Raw, digest);
            if (!blob)
                return;
            const auto payload = blob->sectionAs<uint32_t>(1);
            if (payload.size() == 64 && payload[0] == 77u)
                valid_reads.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(valid_reads.load(), kWriters);
    // One winner on disk; the journal saw every commit.
    EXPECT_EQ(cache.listObjects().size(), 1u);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.stores, static_cast<uint64_t>(kWriters));
    EXPECT_EQ(s.hits, static_cast<uint64_t>(kWriters));
    EXPECT_EQ(s.storeErrors, 0u);
    EXPECT_EQ(journalLines(cache), static_cast<size_t>(kWriters));

    // No stale temp files survive the race.
    for (const auto &e :
         fs::recursive_directory_iterator(dir / "objects")) {
        if (e.is_regular_file()) {
            EXPECT_EQ(e.path().extension(), ".apb") << e.path();
        }
    }
    fs::remove_all(dir);
}

TEST(StoreCache, RacingPipelinesShareOneKey)
{
    ASSERT_TRUE(kEnvReady);
    const fs::path dir = freshDir("sparseap_cache_race_pipeline");
    ScopedCacheOverride scope(dir.string());

    // Two full pipelines race on the same app: both must succeed and
    // agree, whichever wins each store.
    size_t sizes[2] = {0, 0};
    std::thread a([&] {
        ExperimentRunner runner;
        sizes[0] = runner.load("EM").flat().size();
    });
    std::thread b([&] {
        ExperimentRunner runner;
        sizes[1] = runner.load("EM").flat().size();
    });
    a.join();
    b.join();
    EXPECT_NE(sizes[0], 0u);
    EXPECT_EQ(sizes[0], sizes[1]);

    // Whatever the interleaving, every object on disk is valid.
    const std::vector<std::string> objects = scope.cache().listObjects();
    ASSERT_FALSE(objects.empty());
    for (const std::string &path : objects) {
        std::string error;
        EXPECT_NE(BlobView::open(path, &error), nullptr) << error;
    }
    fs::remove_all(dir);
}

struct SweepOutput
{
    std::string ascii;
    std::string csv;
    std::string logs;
};

/** A fig10-shaped mini sweep: partition + run every selected app. */
SweepOutput
runSweep(unsigned jobs)
{
    EXPECT_TRUE(kEnvReady);
    ExperimentRunner runner;

    struct Row
    {
        std::string abbr;
        double speedup = 0.0;
        size_t reports = 0;
        size_t stalls = 0;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());
    EXPECT_EQ(rows.size(), 4u);

    std::ostringstream errs;
    std::streambuf *old = std::cerr.rdbuf(errs.rdbuf());
    runner.forEachApp(
        "HML",
        [&](const LoadedApp &app, size_t i) {
            const size_t capacity =
                app.workload.app.totalStates() / 4 + 8;
            const SpapRunStats s = runAppConfig(app, 0.01, capacity);
            rows[i] = {app.entry.abbr, s.speedup, s.reports.size(),
                       s.enableStalls};
        },
        jobs);
    std::cerr.rdbuf(old);

    Table table({"App", "Speedup", "Reports", "Stalls"});
    for (const Row &r : rows) {
        table.addRow({r.abbr, Table::fmt(r.speedup, 2),
                      std::to_string(r.reports),
                      std::to_string(r.stalls)});
    }
    std::ostringstream ascii, csv;
    table.print(ascii);
    table.printCsv(csv);
    return {ascii.str(), csv.str(), errs.str()};
}

TEST(StoreCache, SweepIsByteIdenticalOffColdAndWarm)
{
    ASSERT_TRUE(kEnvReady);

    SweepOutput off;
    {
        ScopedCacheOverride disabled("");
        off = runSweep(1);
    }

    const fs::path dir = freshDir("sparseap_cache_sweep");
    ScopedCacheOverride scope(dir.string());
    const ArtifactCache &cache = scope.cache();

    const SweepOutput cold = runSweep(8);
    const CacheStats after_cold = cache.stats();
    EXPECT_GT(after_cold.stores, 0u);
    EXPECT_EQ(after_cold.storeErrors, 0u);
    const size_t journal_after_cold = journalLines(cache);
    EXPECT_EQ(journal_after_cold,
              static_cast<size_t>(after_cold.stores));

    cache.resetStats();
    const SweepOutput warm = runSweep(1);
    const CacheStats after_warm = cache.stats();

    // The warm pass must be served entirely from the store: artifacts
    // are neither recomputed-and-stored nor rejected, and the journal
    // does not grow (the property the warm-cache CI job asserts).
    EXPECT_EQ(after_warm.stores, 0u);
    EXPECT_GT(after_warm.hits, 0u);
    EXPECT_EQ(after_warm.invalid, 0u);
    EXPECT_EQ(after_warm.misses, 0u);
    EXPECT_EQ(journalLines(cache), journal_after_cold);

    // Tables, CSV renderings and captured logs are byte-identical with
    // the cache off, cold and warm, across different job counts.
    EXPECT_EQ(off.ascii, cold.ascii);
    EXPECT_EQ(off.csv, cold.csv);
    EXPECT_EQ(off.logs, cold.logs);
    EXPECT_EQ(off.ascii, warm.ascii);
    EXPECT_EQ(off.csv, warm.csv);
    EXPECT_EQ(off.logs, warm.logs);

    for (const char *abbr : {"EM", "Rg05", "RF2", "CAV"})
        EXPECT_NE(off.ascii.find(abbr), std::string::npos) << abbr;
    fs::remove_all(dir);
}

TEST(StoreCache, WrongKindOrRenamedObjectIsAMissNotAnError)
{
    ASSERT_TRUE(kEnvReady);
    const fs::path dir = freshDir("sparseap_cache_foreign");
    const ArtifactCache cache(dir.string());
    const uint64_t digest = 42;
    ASSERT_TRUE(cache.store(sampleWriter(digest, 9)));

    std::ostringstream errs;
    std::streambuf *old = std::cerr.rdbuf(errs.rdbuf());

    // Same digest, wrong kind: rejected, counted invalid.
    EXPECT_EQ(cache.load(ArtifactKind::FlatAutomaton, digest), nullptr);

    // A blob copied under another key (embedded digest disagrees with
    // its file name) is rejected too.
    const std::string stray = cache.objectPath(digest + 1);
    fs::create_directories(fs::path(stray).parent_path());
    fs::copy_file(cache.objectPath(digest), stray);
    EXPECT_EQ(cache.load(ArtifactKind::Raw, digest + 1), nullptr);

    std::cerr.rdbuf(old);
    EXPECT_NE(errs.str().find("recomputing"), std::string::npos)
        << errs.str();

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.invalid, 2u);
    EXPECT_EQ(s.misses, 2u);

    // The well-named object still loads.
    EXPECT_NE(cache.load(ArtifactKind::Raw, digest), nullptr);
    fs::remove_all(dir);
}

TEST(StoreCache, GcSweepsCorruptionAndTempFiles)
{
    ASSERT_TRUE(kEnvReady);
    const fs::path dir = freshDir("sparseap_cache_gc");
    const ArtifactCache cache(dir.string());
    ASSERT_TRUE(cache.store(sampleWriter(1, 1)));
    ASSERT_TRUE(cache.store(sampleWriter(2, 2)));

    // Corrupt one blob's payload in place.
    const std::string victim = cache.objectPath(2);
    {
        std::fstream f(victim, std::ios::in | std::ios::out |
                                   std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekp(static_cast<std::streamoff>(fs::file_size(victim)) - 5);
        const char x = 0x55;
        f.write(&x, 1);
    }
    // Plant a stale temp file from a hypothetical interrupted writer.
    const fs::path stale = dir / "objects" / "00" / "leftover.tmp";
    fs::create_directories(stale.parent_path());
    std::ofstream(stale) << "partial";

    std::ostringstream errs; // silence the invalid-blob warn
    std::streambuf *old = std::cerr.rdbuf(errs.rdbuf());
    const ArtifactCache::SweepResult r = cache.gc();
    std::cerr.rdbuf(old);

    EXPECT_EQ(r.scanned, 2u);
    EXPECT_EQ(r.invalid, 1u);
    EXPECT_EQ(r.removed, 2u); // corrupted blob + temp file
    EXPECT_GT(r.bytesRemoved, 0u);
    EXPECT_FALSE(fs::exists(victim));
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_NE(cache.load(ArtifactKind::Raw, 1), nullptr);

    // gc --all empties the store.
    const ArtifactCache::SweepResult all = cache.gc(true);
    EXPECT_EQ(all.scanned, 1u);
    EXPECT_EQ(all.removed, 1u);
    EXPECT_TRUE(cache.listObjects().empty());
    fs::remove_all(dir);
}

} // namespace
} // namespace sparseap
