/**
 * @file
 * Artifact codec round-trips: a FlatAutomaton loaded (mmap, zero-copy)
 * from a store blob must report byte-identically to a freshly-built one
 * across every registered workload in all three execution modes (sparse,
 * compressed dense, raw dense); profiles and prepared partitions must
 * survive encode/decode with identical contents and identical pipeline
 * results.
 */

#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/engine.h"
#include "store/artifact.h"
#include "store/cache.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

namespace fs = std::filesystem;
using store::BlobView;
using store::BlobWriter;

ReportList
sortedReports(const FlatAutomaton &fa, EngineMode mode,
              std::span<const uint8_t> input)
{
    Engine engine(fa, mode);
    ReportList r = engine.run(input).reports;
    std::sort(r.begin(), r.end());
    return r;
}

std::vector<uint8_t>
smallInput(const Workload &w, Rng &rng)
{
    size_t bytes = 1536;
    if (w.inputBytesCap > 0)
        bytes = std::min(bytes, w.inputBytesCap);
    return synthesizeInput(w.input, bytes, rng);
}

/** Round-trip @p fa through an on-disk blob (real mmap load). */
std::unique_ptr<FlatAutomaton>
reload(const FlatAutomaton &fa, const fs::path &dir, uint64_t digest)
{
    BlobWriter w(store::ArtifactKind::FlatAutomaton, digest);
    store::encodeFlatAutomaton(fa, w);
    const std::string path =
        (dir / (store::digestHex(digest) + ".apb")).string();
    std::string error;
    EXPECT_TRUE(w.commit(path, &error)) << error;
    auto blob = BlobView::open(path, &error);
    EXPECT_NE(blob, nullptr) << error;
    if (!blob)
        return nullptr;
    auto decoded = store::decodeFlatAutomaton(*blob, 0, &error);
    EXPECT_NE(decoded, nullptr) << error;
    return decoded;
}

TEST(StoreRoundtrip, FlatAutomatonAllWorkloadsAllModes)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "sparseap_roundtrip_fa";
    fs::create_directories(dir);

    Rng input_rng(20180621);
    uint64_t digest = 1;
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        const std::vector<uint8_t> input = smallInput(w, input_rng);

        const FlatAutomaton fresh(w.app);
        const FlatAutomaton fresh_raw(w.app,
                                      FlatAutomaton::DenseCompression::Raw);
        auto loaded = reload(fresh, dir, digest++);
        auto loaded_raw = reload(fresh_raw, dir, digest++);
        ASSERT_NE(loaded, nullptr) << entry.abbr;
        ASSERT_NE(loaded_raw, nullptr) << entry.abbr;

        // Structure survives.
        EXPECT_EQ(loaded->size(), fresh.size()) << entry.abbr;
        EXPECT_EQ(loaded->symbolClassCount(), fresh.symbolClassCount());
        EXPECT_EQ(loaded->compression(), fresh.compression());
        EXPECT_EQ(loaded_raw->compression(),
                  FlatAutomaton::DenseCompression::Raw);
        EXPECT_EQ(loaded_raw->denseView().classes, 256u) << entry.abbr;
        for (unsigned b = 0; b < 256; ++b) {
            EXPECT_EQ(loaded->symbolClass(static_cast<uint8_t>(b)),
                      fresh.symbolClass(static_cast<uint8_t>(b)));
        }

        // Identical reports in every execution mode.
        const ReportList want =
            sortedReports(fresh, EngineMode::Sparse, input);
        EXPECT_EQ(sortedReports(*loaded, EngineMode::Sparse, input), want)
            << entry.abbr << " sparse";
        EXPECT_EQ(sortedReports(*loaded, EngineMode::Dense, input), want)
            << entry.abbr << " dense-compressed";
        EXPECT_EQ(sortedReports(*loaded_raw, EngineMode::Dense, input),
                  want)
            << entry.abbr << " dense-raw";
    }
    fs::remove_all(dir);
}

TEST(StoreRoundtrip, FlatAutomatonDecodeRejectsForeignStructure)
{
    Workload w = generateWorkload("EM", 7, 5);
    const FlatAutomaton fa(w.app);
    BlobWriter bw(store::ArtifactKind::FlatAutomaton, 99);
    store::encodeFlatAutomaton(fa, bw);
    std::string error;
    auto blob = BlobView::fromBuffer(bw.finalize(), &error);
    ASSERT_NE(blob, nullptr) << error;

    // Valid blob, but decoding at a wrong base finds no sections.
    EXPECT_EQ(store::decodeFlatAutomaton(*blob, 1000, &error), nullptr);
    EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

TEST(StoreRoundtrip, ProfilesAtEveryCheckpointPrefix)
{
    Rng input_rng(7);
    for (const char *abbr : {"EM", "CAV", "Rg05", "SPM"}) {
        Workload w = generateWorkload(abbr, 7, 5);
        const std::vector<uint8_t> input = smallInput(w, input_rng);
        const FlatAutomaton fa(w.app);

        const std::vector<size_t> checkpoints{1, 16, 128,
                                              input.size() / 2};
        const std::vector<HotColdProfile> profs =
            profileApplication(fa, input, checkpoints);
        ASSERT_EQ(profs.size(), checkpoints.size());

        for (size_t i = 0; i < checkpoints.size(); ++i) {
            BlobWriter bw(store::ArtifactKind::Profile, 7000 + i);
            store::encodeProfile(profs[i], checkpoints[i], bw);
            std::string error;
            auto blob = BlobView::fromBuffer(bw.finalize(), &error);
            ASSERT_NE(blob, nullptr) << error;

            HotColdProfile decoded;
            size_t prefix_len = 0;
            ASSERT_TRUE(store::decodeProfile(*blob, &decoded,
                                             &prefix_len, &error))
                << error;
            EXPECT_EQ(prefix_len, checkpoints[i]);
            EXPECT_EQ(decoded.hot, profs[i].hot)
                << abbr << " @ " << checkpoints[i];
            EXPECT_EQ(decoded.hotCount(), profs[i].hotCount());
        }
    }
}

/** Full deep equality of two applications. */
void
expectAppsEqual(const Application &a, const Application &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.abbr(), b.abbr());
    EXPECT_EQ(a.group(), b.group());
    ASSERT_EQ(a.nfaCount(), b.nfaCount());
    ASSERT_EQ(a.totalStates(), b.totalStates());
    for (uint32_t ni = 0; ni < a.nfaCount(); ++ni) {
        const Nfa &na = a.nfa(ni);
        const Nfa &nb = b.nfa(ni);
        EXPECT_EQ(na.name(), nb.name()) << "nfa " << ni;
        ASSERT_EQ(na.size(), nb.size()) << "nfa " << ni;
        EXPECT_EQ(na.startStates(), nb.startStates()) << "nfa " << ni;
        for (StateId s = 0; s < na.size(); ++s) {
            EXPECT_TRUE(na.state(s).symbols == nb.state(s).symbols);
            EXPECT_EQ(na.state(s).start, nb.state(s).start);
            EXPECT_EQ(na.state(s).reporting, nb.state(s).reporting);
            EXPECT_EQ(na.state(s).successors, nb.state(s).successors);
        }
    }
}

TEST(StoreRoundtrip, ApplicationBinaryBag)
{
    for (const char *abbr : {"EM", "RF2", "SPM"}) {
        Workload w = generateWorkload(abbr, 7, 5);
        BlobWriter bw(store::ArtifactKind::Raw, 11);
        store::encodeApplication(w.app, bw, 40);
        std::string error;
        auto blob = BlobView::fromBuffer(bw.finalize(), &error);
        ASSERT_NE(blob, nullptr) << error;

        Application decoded;
        ASSERT_TRUE(store::decodeApplication(*blob, 40, &decoded, &error))
            << error;
        expectAppsEqual(w.app, decoded);
    }
}

TEST(StoreRoundtrip, PreparedPartitionPipelineEquivalence)
{
    Rng input_rng(99);
    for (const char *abbr : {"EM", "CAV", "HM1000"}) {
        Workload w = generateWorkload(abbr, 7, 5);
        const std::vector<uint8_t> input = smallInput(w, input_rng);
        AppTopology topo(w.app);

        ExecutionOptions opts;
        opts.ap.capacity = w.app.totalStates() / 4 + 8;
        opts.profileFraction = 0.01;
        opts.fullInputAsTest = w.fullInputAsTest;

        const PreparedPartition fresh =
            preparePartition(topo, opts, input);

        BlobWriter bw(store::ArtifactKind::Partition, 31337);
        store::encodePreparedPartition(fresh, opts.ap.capacity, bw);
        std::string error;
        auto blob = BlobView::fromBuffer(bw.finalize(), &error);
        ASSERT_NE(blob, nullptr) << error;

        PreparedPartition loaded;
        ASSERT_TRUE(
            store::decodePreparedPartition(*blob, &loaded, &error))
            << error;
        loaded.profileInput = fresh.profileInput;
        loaded.testInput = fresh.testInput;

        EXPECT_EQ(loaded.layers.k, fresh.layers.k) << abbr;
        expectAppsEqual(fresh.part.hot, loaded.part.hot);
        expectAppsEqual(fresh.part.cold, loaded.part.cold);
        EXPECT_EQ(loaded.part.hotToOriginal, fresh.part.hotToOriginal);
        EXPECT_EQ(loaded.part.intermediateTarget,
                  fresh.part.intermediateTarget);
        EXPECT_EQ(loaded.part.coldToOriginal, fresh.part.coldToOriginal);
        EXPECT_EQ(loaded.part.originalToCold, fresh.part.originalToCold);
        EXPECT_EQ(loaded.part.coldNfaToOriginal,
                  fresh.part.coldNfaToOriginal);
        EXPECT_EQ(loaded.part.intermediateCount,
                  fresh.part.intermediateCount);
        EXPECT_EQ(loaded.part.hotOriginalReporting,
                  fresh.part.hotOriginalReporting);
        EXPECT_EQ(loaded.part.coldReporting, fresh.part.coldReporting);
        // The blob carries the hot automaton pre-flattened.
        ASSERT_NE(loaded.hotFa, nullptr);
        EXPECT_EQ(loaded.hotFa->size(), fresh.part.hot.totalStates());

        // Identical end-to-end pipeline results.
        const SpapRunStats a = runBaseApSpap(topo, opts, fresh, true);
        const SpapRunStats b = runBaseApSpap(topo, opts, loaded, true);
        EXPECT_EQ(a.reports, b.reports) << abbr;
        EXPECT_EQ(a.baseApBatches, b.baseApBatches);
        EXPECT_EQ(a.spApBatches, b.spApBatches);
        EXPECT_EQ(a.spApCycles, b.spApCycles);
        EXPECT_EQ(a.enableStalls, b.enableStalls);
        EXPECT_EQ(a.intermediateReports, b.intermediateReports);
        EXPECT_EQ(a.speedup, b.speedup);
    }
}

} // namespace
} // namespace sparseap
