/**
 * @file
 * StreamBatchRunner tests: a batch of B streams over one shared
 * automaton must produce, per stream, exactly the reports a dedicated
 * whole-input Engine::run would — byte-identical at any lane count
 * (SPARSEAP_JOBS), any rotation quantum, in every engine mode, with the
 * fused DFA interleave engaged and not. The thread-sanitizer CI leg runs
 * these to vet the shared-FlatAutomaton concurrency.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/engine.h"
#include "sim/exec_core.h"
#include "sim/stream_batch.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

/** B distinct inputs for one workload (same generator, different draw). */
std::vector<std::vector<uint8_t>>
makeStreams(const Workload &w, size_t b, size_t bytes, Rng &rng)
{
    size_t len = bytes;
    if (w.inputBytesCap > 0)
        len = std::min(len, w.inputBytesCap);
    std::vector<std::vector<uint8_t>> streams;
    streams.reserve(b);
    for (size_t i = 0; i < b; ++i)
        streams.push_back(synthesizeInput(w.input, len, rng));
    return streams;
}

std::vector<std::span<const uint8_t>>
asSpans(const std::vector<std::vector<uint8_t>> &streams)
{
    return {streams.begin(), streams.end()};
}

/** Per-stream whole-input references through dedicated engines. */
std::vector<ReportList>
referenceReports(const FlatAutomaton &fa, EngineMode mode,
                 const std::vector<std::vector<uint8_t>> &streams)
{
    std::vector<ReportList> refs;
    refs.reserve(streams.size());
    for (const auto &s : streams) {
        Engine engine(fa, mode);
        engine.setInputSkip(true);
        refs.push_back(engine.run(s).reports);
    }
    return refs;
}

/**
 * Batch == per-stream Engine::run on every mode, for stream counts
 * around and above the lane count. The runner's sessions run the
 * default all-bytes alphabet, so compare report multisets per stream
 * (within-position order can differ from the exact-alphabet engine);
 * position/state content must match record for record.
 */
TEST(StreamBatch, MatchesDedicatedEnginesPerStream)
{
    Rng rng(20180621);
    const char *abbrs[] = {"Bro217", "Brill", "EM"};
    for (const char *abbr : abbrs) {
        Workload w = generateWorkload(abbr, 7, 5);
        FlatAutomaton fa(w.app);
        const auto streams = makeStreams(w, 6, 768, rng);
        const auto spans = asSpans(streams);

        for (EngineMode mode :
             {EngineMode::Sparse, EngineMode::Dense, EngineMode::Dfa,
              EngineMode::Auto}) {
            SCOPED_TRACE(std::string(abbr) + " mode " +
                         engineModeName(mode));
            auto refs = referenceReports(fa, mode, streams);

            SessionConfig config;
            config.mode = mode;
            config.inputSkip = true;
            StreamBatchRunner runner(fa, config);
            runner.setQuantum(256);
            const std::vector<StreamResult> got =
                runner.run(spans, /*jobs=*/4);

            ASSERT_EQ(got.size(), streams.size());
            for (size_t i = 0; i < got.size(); ++i) {
                ReportList a = got[i].reports;
                ReportList b = refs[i];
                std::sort(a.begin(), a.end());
                std::sort(b.begin(), b.end());
                EXPECT_EQ(a, b) << "stream " << i;
                EXPECT_EQ(got[i].stats.cycles, streams[i].size());
            }
        }
    }
}

/**
 * Lane-count invariance: the full result set — reports AND stats — is
 * byte-identical at jobs 1, 2, 3, 8. Determinism is the contract that
 * makes batch output reproducible under any SPARSEAP_JOBS.
 */
TEST(StreamBatch, ResultsAreByteIdenticalAtAnyLaneCount)
{
    Rng rng(20180622);
    Workload w = generateWorkload("Bro217", 7, 5);
    FlatAutomaton fa(w.app);
    const auto streams = makeStreams(w, 9, 1024, rng);
    const auto spans = asSpans(streams);

    for (EngineMode mode : {EngineMode::Dfa, EngineMode::Auto}) {
        SessionConfig config;
        config.mode = mode;
        config.inputSkip = true;
        StreamBatchRunner runner(fa, config);

        const std::vector<StreamResult> base = runner.run(spans, 1);
        for (unsigned jobs : {2u, 3u, 8u}) {
            const std::vector<StreamResult> got =
                runner.run(spans, jobs);
            ASSERT_EQ(got.size(), base.size());
            for (size_t i = 0; i < got.size(); ++i) {
                SCOPED_TRACE("mode " +
                             std::string(engineModeName(mode)) +
                             " jobs " + std::to_string(jobs) +
                             " stream " + std::to_string(i));
                EXPECT_EQ(got[i].reports, base[i].reports);
                EXPECT_EQ(got[i].resolvedMode, base[i].resolvedMode);
                EXPECT_EQ(got[i].stats.cycles, base[i].stats.cycles);
                EXPECT_EQ(got[i].stats.skippedSymbols,
                          base[i].stats.skippedSymbols);
                EXPECT_EQ(got[i].stats.skipJumps,
                          base[i].stats.skipJumps);
                EXPECT_EQ(got[i].stats.handedOver,
                          base[i].stats.handedOver);
            }
        }
    }
}

/** Reports are quantum-invariant (stats may legitimately differ: the
 *  skip scans clip at rotation boundaries). */
TEST(StreamBatch, ReportsAreQuantumInvariant)
{
    Rng rng(20180623);
    Workload w = generateWorkload("EM", 7, 5);
    FlatAutomaton fa(w.app);
    const auto streams = makeStreams(w, 5, 700, rng);
    const auto spans = asSpans(streams);

    SessionConfig config;
    config.mode = EngineMode::Auto;
    StreamBatchRunner base(fa, config);
    base.setQuantum(StreamBatchRunner::kDefaultQuantum);
    const auto want = base.run(spans, 2);

    for (size_t quantum : {size_t{1}, size_t{13}, size_t{256}}) {
        StreamBatchRunner runner(fa, config);
        runner.setQuantum(quantum);
        const auto got = runner.run(spans, 2);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].reports, want[i].reports)
                << "quantum " << quantum << " stream " << i;
    }
}

/** The fused DFA interleave engages on a determinizable rule set and
 *  produces the dedicated-engine stream per lane-mate. */
TEST(StreamBatch, FusedDfaLanesMatchDedicatedEngines)
{
    Rng rng(20180624);
    Workload w = generateWorkload("Bro217", 7, 5);
    FlatAutomaton fa(w.app);
    ASSERT_NE(fa.ensureHotDfa(), nullptr)
        << "Bro217 at 5% scale must determinize within the budget";
    const auto streams = makeStreams(w, 16, 1024, rng);
    const auto spans = asSpans(streams);

    SessionConfig config;
    config.mode = EngineMode::Dfa;
    StreamBatchRunner runner(fa, config);
    runner.setQuantum(64); // many rotations through the fused path
    const auto got = runner.run(spans, 2);

    auto refs = referenceReports(fa, EngineMode::Dfa, streams);
    ASSERT_EQ(got.size(), streams.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].resolvedMode, EngineMode::Dfa)
            << "stream " << i;
        EXPECT_EQ(got[i].reports, refs[i]) << "stream " << i;
    }
}

/** Degenerate shapes: no streams, one stream, empty streams, more lanes
 *  than streams. */
TEST(StreamBatch, DegenerateShapes)
{
    Rng rng(20180625);
    Workload w = generateWorkload("Brill", 7, 5);
    FlatAutomaton fa(w.app);

    SessionConfig config;
    config.mode = EngineMode::Auto;
    StreamBatchRunner runner(fa, config);

    // Empty batch.
    EXPECT_TRUE(runner.run({}, 4).empty());

    // One stream, eight lanes.
    const auto one = makeStreams(w, 1, 512, rng);
    Engine engine(fa, EngineMode::Auto);
    const ReportList want = engine.run(one[0]).reports;
    const auto got_one = runner.run(asSpans(one), 8);
    ASSERT_EQ(got_one.size(), 1u);
    ReportList a = got_one[0].reports;
    ReportList b = want;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);

    // Empty streams mixed with real ones terminate and report nothing.
    auto mixed = makeStreams(w, 3, 512, rng);
    mixed[1].clear();
    const auto got_mixed = runner.run(asSpans(mixed), 2);
    ASSERT_EQ(got_mixed.size(), 3u);
    EXPECT_TRUE(got_mixed[1].reports.empty());
    EXPECT_EQ(got_mixed[1].stats.cycles, 0u);
    EXPECT_EQ(got_mixed[0].stats.cycles, mixed[0].size());
    EXPECT_EQ(got_mixed[2].stats.cycles, mixed[2].size());
}

/** Regression: a batch where EVERY stream is empty must terminate and
 *  still produce one result slot per stream with zeroed stats — in
 *  every mode (including the fused DFA path) and at any lane count. */
TEST(StreamBatch, AllEmptyBatchYieldsZeroedSlots)
{
    Workload w = generateWorkload("Bro217", 7, 5);
    FlatAutomaton fa(w.app);
    ASSERT_NE(fa.ensureHotDfa(), nullptr);

    const std::vector<std::vector<uint8_t>> empties(5);
    for (EngineMode mode :
         {EngineMode::Sparse, EngineMode::Dense, EngineMode::Dfa,
          EngineMode::Auto}) {
        SessionConfig config;
        config.mode = mode;
        StreamBatchRunner runner(fa, config);
        for (unsigned jobs : {1u, 3u, 8u}) {
            SCOPED_TRACE(std::string(engineModeName(mode)) + " jobs " +
                         std::to_string(jobs));
            const auto got = runner.run(asSpans(empties), jobs);
            ASSERT_EQ(got.size(), empties.size());
            for (const StreamResult &r : got) {
                EXPECT_TRUE(r.reports.empty());
                EXPECT_EQ(r.stats.cycles, 0u);
                EXPECT_EQ(r.stats.chunks, 0u);
                EXPECT_EQ(r.stats.skippedSymbols, 0u);
                EXPECT_FALSE(r.stats.handedOver);
            }
        }
    }
}

} // namespace
} // namespace sparseap
