/**
 * @file
 * Tests for the byte→equivalence-class map and the compressed dense
 * accept table: class-map construction on hand-built automata, dedup
 * equivalence against brute force, and report equality of the sparse,
 * compressed-dense, and raw-dense execution paths on every registered
 * workload.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/engine.h"
#include "support/random_nfa.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

ReportList
sortedReports(Engine &engine, std::span<const uint8_t> input)
{
    ReportList r = engine.run(input).reports;
    std::sort(r.begin(), r.end());
    return r;
}

/** One single-state NFA per symbol set. */
Application
appOf(const std::vector<SymbolSet> &sets)
{
    Application app("classes", "CL");
    for (const SymbolSet &set : sets) {
        Nfa nfa("n");
        nfa.addState(set, StartKind::AllInput, true);
        nfa.finalize();
        app.addNfa(std::move(nfa));
    }
    return app;
}

/**
 * Two bytes must share a class iff every state treats them identically —
 * checked exhaustively over all 256×256 byte pairs.
 */
void
expectClassesPartitionColumns(const FlatAutomaton &fa)
{
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = a + 1; b < 256; ++b) {
            bool same_column = true;
            for (GlobalStateId s = 0; s < fa.size(); ++s) {
                if (fa.symbols(s).test(static_cast<uint8_t>(a)) !=
                    fa.symbols(s).test(static_cast<uint8_t>(b))) {
                    same_column = false;
                    break;
                }
            }
            EXPECT_EQ(fa.symbolClass(static_cast<uint8_t>(a)) ==
                          fa.symbolClass(static_cast<uint8_t>(b)),
                      same_column)
                << "bytes " << a << " and " << b;
        }
    }
}

/** Sets {a,b} and {b,c}: 'a', 'b', 'c' split three ways, rest pool. */
TEST(SymbolClasses, IdenticalColumnsCoalesce)
{
    SymbolSet ab = SymbolSet::single('a');
    ab.set('b');
    SymbolSet bc = SymbolSet::single('b');
    bc.set('c');
    FlatAutomaton fa(appOf({ab, bc}));

    // Membership vectors: a->{10}, b->{11}, c->{01}, other->{00}.
    EXPECT_EQ(fa.symbolClassCount(), 4u);
    std::set<uint8_t> distinct{fa.symbolClass('a'), fa.symbolClass('b'),
                               fa.symbolClass('c'), fa.symbolClass('x')};
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_EQ(fa.symbolClass('x'), fa.symbolClass(0));
    EXPECT_EQ(fa.symbolClass('x'), fa.symbolClass(255));
    expectClassesPartitionColumns(fa);

    // Representatives are each class's smallest member byte.
    for (size_t c = 0; c < fa.symbolClassCount(); ++c) {
        const uint8_t rep = fa.classRepresentative(c);
        EXPECT_EQ(fa.symbolClass(rep), c);
        for (unsigned b = 0; b < rep; ++b)
            EXPECT_NE(fa.symbolClass(static_cast<uint8_t>(b)), c);
    }
}

/** Universal symbol sets never split the alphabet. */
TEST(SymbolClasses, UniversalSetsYieldOneClass)
{
    FlatAutomaton fa(appOf({SymbolSet::all(), SymbolSet::all()}));
    EXPECT_EQ(fa.symbolClassCount(), 1u);
    for (unsigned b = 0; b < 256; ++b)
        EXPECT_EQ(fa.symbolClass(static_cast<uint8_t>(b)), 0u);
    const FlatAutomaton::DenseView &dv = fa.denseView();
    EXPECT_EQ(dv.classes, 1u);
    EXPECT_LT(dv.acceptBytes(), dv.rawAcceptBytes());
}

/**
 * Eight states where state i accepts exactly the bytes with bit i set:
 * every byte column is distinct, so compression must degrade gracefully
 * to the full 256-class identity map.
 */
TEST(SymbolClasses, FullyDistinctColumnsStayUncompressed)
{
    std::vector<SymbolSet> sets(8);
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned b = 0; b < 256; ++b)
            if (b & (1u << i))
                sets[i].set(static_cast<uint8_t>(b));
    FlatAutomaton fa(appOf(sets));

    EXPECT_EQ(fa.symbolClassCount(), 256u);
    // Deterministic first-occurrence numbering makes the map identity.
    for (unsigned b = 0; b < 256; ++b) {
        EXPECT_EQ(fa.symbolClass(static_cast<uint8_t>(b)), b);
        EXPECT_EQ(fa.classRepresentative(b), b);
    }
    EXPECT_EQ(fa.denseView().classes, 256u);
}

/** Class map and accept table agree with symbols() on random automata. */
TEST(SymbolClasses, PropertyClassMapMatchesColumns)
{
    Rng rng(20181020);
    for (int trial = 0; trial < 20; ++trial) {
        testing::RandomNfaParams params;
        params.alphabetSize = 64;
        params.universalProb = trial % 4 == 0 ? 0.3 : 0.05;
        Application app = testing::randomApplication(rng, 4, params);
        FlatAutomaton fa(app);
        expectClassesPartitionColumns(fa);

        const FlatAutomaton::DenseView &dv = fa.denseView();
        EXPECT_EQ(dv.classes, fa.symbolClassCount());
        for (unsigned b = 0; b < 256; ++b) {
            const uint64_t *row = dv.acceptRow(static_cast<uint8_t>(b));
            for (GlobalStateId s = 0; s < fa.size(); ++s) {
                EXPECT_EQ(testWordBit(row, s),
                          fa.symbols(s).test(static_cast<uint8_t>(b)))
                    << "byte " << b << " state " << s;
            }
        }
    }
}

/** The deduped start table equals a per-byte brute-force scan. */
TEST(SymbolClasses, StartTableDedupMatchesBruteForce)
{
    Rng rng(99);
    testing::RandomNfaParams params;
    params.extraStartProb = 0.5;
    params.alphabetSize = 48;
    Application app = testing::randomApplication(rng, 6, params);
    FlatAutomaton fa(app);

    for (unsigned b = 0; b < 256; ++b) {
        std::vector<GlobalStateId> want;
        for (GlobalStateId s : fa.allInputStarts())
            if (fa.symbols(s).test(static_cast<uint8_t>(b)))
                want.push_back(s);
        const auto got = fa.allInputStartsFor(static_cast<uint8_t>(b));
        EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                               want.end()))
            << "byte " << b;
    }
}

/**
 * Sparse, compressed dense, and raw dense emit identical report lists on
 * every registered workload — the compressed accept table must be a pure
 * layout change.
 */
TEST(SymbolClasses, PropertyRawAndCompressedDenseMatchOnAllWorkloads)
{
    Rng input_rng(20180621);
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1536;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);

        FlatAutomaton fa(w.app);
        FlatAutomaton raw(w.app, FlatAutomaton::DenseCompression::Raw);
        EXPECT_EQ(raw.denseView().classes, 256u);
        EXPECT_LE(fa.denseView().acceptBytes(),
                  raw.denseView().acceptBytes())
            << entry.abbr;

        Engine sparse(fa, EngineMode::Sparse);
        Engine dense(fa, EngineMode::Dense);
        Engine dense_raw(raw, EngineMode::Dense);
        const ReportList want = sortedReports(sparse, input);
        EXPECT_EQ(sortedReports(dense, input), want) << entry.abbr;
        EXPECT_EQ(sortedReports(dense_raw, input), want) << entry.abbr;
    }
}

} // namespace
} // namespace sparseap
