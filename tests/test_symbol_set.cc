/** @file Tests for symbol-set parsing and formatting. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nfa/symbol_set.h"

namespace sparseap {
namespace {

TEST(ParseSymbolSet, SingleCharacter)
{
    SymbolSet s = parseSymbolSet("a");
    EXPECT_EQ(s.count(), 1);
    EXPECT_TRUE(s.test('a'));
}

TEST(ParseSymbolSet, Dot)
{
    EXPECT_EQ(parseSymbolSet("."), SymbolSet::all());
}

TEST(ParseSymbolSet, Escapes)
{
    EXPECT_TRUE(parseSymbolSet("\\n").test('\n'));
    EXPECT_TRUE(parseSymbolSet("\\t").test('\t'));
    EXPECT_TRUE(parseSymbolSet("\\r").test('\r'));
    EXPECT_TRUE(parseSymbolSet("\\0").test('\0'));
    EXPECT_TRUE(parseSymbolSet("\\x41").test('A'));
    EXPECT_TRUE(parseSymbolSet("\\xff").test(0xff));
    EXPECT_TRUE(parseSymbolSet("\\\\").test('\\'));
}

TEST(ParseSymbolSet, BracketClass)
{
    SymbolSet s = parseSymbolSet("[abc]");
    EXPECT_EQ(s.count(), 3);
    EXPECT_TRUE(s.test('a'));
    EXPECT_TRUE(s.test('b'));
    EXPECT_TRUE(s.test('c'));
}

TEST(ParseSymbolSet, BracketRange)
{
    SymbolSet s = parseSymbolSet("[a-e]");
    EXPECT_EQ(s.count(), 5);
    EXPECT_TRUE(s.test('a'));
    EXPECT_TRUE(s.test('e'));
    EXPECT_FALSE(s.test('f'));
}

TEST(ParseSymbolSet, NegatedClass)
{
    SymbolSet s = parseSymbolSet("[^a-z]");
    EXPECT_EQ(s.count(), 256 - 26);
    EXPECT_FALSE(s.test('m'));
    EXPECT_TRUE(s.test('A'));
}

TEST(ParseSymbolSet, MixedClassWithEscapes)
{
    SymbolSet s = parseSymbolSet("[\\x00-\\x1f0-9]");
    EXPECT_EQ(s.count(), 32 + 10);
    EXPECT_TRUE(s.test(0x00));
    EXPECT_TRUE(s.test(0x1f));
    EXPECT_TRUE(s.test('5'));
    EXPECT_FALSE(s.test('a'));
}

TEST(ParseSymbolSet, ClassWithLeadingDashLikeMember)
{
    // '-' right before ']' is literal.
    SymbolSet s = parseSymbolSet("[a-]");
    EXPECT_TRUE(s.test('a'));
    EXPECT_TRUE(s.test('-'));
}

TEST(ParseSymbolSet, MalformedDies)
{
    EXPECT_EXIT(parseSymbolSet(""), ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(parseSymbolSet("[abc"), ::testing::ExitedWithCode(1),
                "unterminated");
    EXPECT_EXIT(parseSymbolSet("[z-a]"), ::testing::ExitedWithCode(1),
                "inverted");
    EXPECT_EXIT(parseSymbolSet("\\xg1"), ::testing::ExitedWithCode(1),
                "hex");
    EXPECT_EXIT(parseSymbolSet("ab"), ::testing::ExitedWithCode(1),
                "trailing");
}

TEST(FormatSymbolSet, CanonicalForms)
{
    EXPECT_EQ(formatSymbolSet(SymbolSet::all()), ".");
    EXPECT_EQ(formatSymbolSet(SymbolSet::single('a')), "a");
    EXPECT_EQ(formatSymbolSet(SymbolSet::range('a', 'c')), "[a-c]");
}

/** Property: parse(format(s)) == s for random sets. */
TEST(FormatSymbolSet, PropertyRoundTrip)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        SymbolSet s;
        const int n = static_cast<int>(rng.uniform(1, 40));
        for (int i = 0; i < n; ++i)
            s.set(rng.byte());
        const std::string text = formatSymbolSet(s);
        EXPECT_EQ(parseSymbolSet(text), s) << "via '" << text << "'";
    }
}

/** Property: round trip through ranges and complements. */
TEST(FormatSymbolSet, PropertyRoundTripStructured)
{
    Rng rng(78);
    for (int trial = 0; trial < 100; ++trial) {
        uint8_t lo = rng.byte();
        uint8_t hi = static_cast<uint8_t>(
            lo + rng.uniform(0, 255 - lo));
        SymbolSet s = SymbolSet::range(lo, hi);
        if (rng.chance(0.5))
            s = ~s;
        if (s.empty())
            continue; // formatting an empty set is unspecified
        EXPECT_EQ(parseSymbolSet(formatSymbolSet(s)), s);
    }
}

} // namespace
} // namespace sparseap
