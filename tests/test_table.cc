/** @file Tests for the ASCII/CSV table writer. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.h"

namespace sparseap {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"app", "speedup"});
    t.addRow({"CAV4k", "47.0"});
    t.addRow({"HM", "1.2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("app    speedup"), std::string::npos);
    EXPECT_NE(out.find("CAV4k  47.0"), std::string::npos);
    EXPECT_NE(out.find("HM     1.2"), std::string::npos);
}

TEST(Table, CsvHasNoPadding)
{
    Table t({"a", "b"});
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, RowCount)
{
    Table t({"only"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(3.0, 0), "3");
    EXPECT_EQ(Table::fmt(2.5, 1), "2.5");
}

TEST(Table, PctFormatsFractions)
{
    EXPECT_EQ(Table::pct(0.593, 1), "59.3%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
    EXPECT_EQ(Table::pct(0.0, 1), "0.0%");
}

using TableDeathTest = Table;

TEST(TableDeathTest, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace sparseap
