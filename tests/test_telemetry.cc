/**
 * @file
 * Telemetry subsystem tests: registry merge semantics (thread-sharded
 * counters, gauges, histogram metrics), snapshot delta/JSON round-trip,
 * the determinism contract (deterministic counters are byte-identical
 * across job counts; log replay is unchanged by an active trace
 * session), and trace-session output covering every pipeline phase.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "spap/executor.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot_io.h"
#include "telemetry/trace.h"
#include "workloads/inputs.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

/** Per-process scratch file (ctest may run sibling tests in parallel). */
std::string
scratchPath(const char *stem)
{
    return "/tmp/sparseap_" + std::string(stem) + "_" +
           std::to_string(getpid()) + ".jsonl";
}

// globalOptions() is parsed once per process, so pin the environment to
// a small deterministic configuration before the first ExperimentRunner.
// SPARSEAP_JSON points at a per-process scratch file so forEachApp's
// telemetry records can be read back.
const bool kEnvReady = [] {
    setenv("SPARSEAP_INPUT_KB", "4", 1);
    setenv("SPARSEAP_SCALE", "3", 1);
    setenv("SPARSEAP_APPS", "EM,Rg05,DS03,RF2,LV,CAV", 1);
    setenv("SPARSEAP_VERBOSE", "1", 1);
    const std::string json = scratchPath("telemetry");
    std::remove(json.c_str());
    setenv("SPARSEAP_JSON", json.c_str(), 1);
    unsetenv("SPARSEAP_TRACE");
    unsetenv("SPARSEAP_STATS");
    return true;
}();

TEST(TelemetryRegistry, CounterVisibleInSnapshot)
{
    static telemetry::Counter c("test.counter.basic");
    const telemetry::Snapshot before = telemetry::snapshot();
    c.add();
    c.add(41);
    const telemetry::Snapshot delta =
        before.deltaTo(telemetry::snapshot());
    ASSERT_TRUE(delta.counters.count("test.counter.basic"));
    EXPECT_EQ(delta.counters.at("test.counter.basic"), 42u);
}

TEST(TelemetryRegistry, CountersMergeAcrossThreads)
{
    static telemetry::Counter c("test.counter.threads");
    const telemetry::Snapshot before = telemetry::snapshot();

    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    }
    for (std::thread &t : threads)
        t.join();

    const telemetry::Snapshot delta =
        before.deltaTo(telemetry::snapshot());
    EXPECT_EQ(delta.counters.at("test.counter.threads"),
              kThreads * kPerThread);
}

TEST(TelemetryRegistry, SameNameSharesOneCell)
{
    // Two handles interning the same name fold into one counter.
    telemetry::Counter a("test.counter.shared");
    telemetry::Counter b("test.counter.shared");
    const telemetry::Snapshot before = telemetry::snapshot();
    a.add(3);
    b.add(4);
    const telemetry::Snapshot delta =
        before.deltaTo(telemetry::snapshot());
    EXPECT_EQ(delta.counters.at("test.counter.shared"), 7u);
}

TEST(TelemetryRegistry, GaugeSetAndMax)
{
    telemetry::Gauge g("test.gauge");
    g.set(5);
    g.max(3); // below current level: no change
    EXPECT_EQ(telemetry::snapshot().gauges.at("test.gauge"), 5);
    g.max(9);
    EXPECT_EQ(telemetry::snapshot().gauges.at("test.gauge"), 9);
    g.set(2); // set is last-write-wins, may lower
    EXPECT_EQ(telemetry::snapshot().gauges.at("test.gauge"), 2);
}

TEST(TelemetryRegistry, HistogramMetricAggregates)
{
    static telemetry::HistogramMetric h("test.hist");
    const telemetry::Snapshot before = telemetry::snapshot();
    for (uint64_t v : {1ull, 2ull, 100ull, 100ull, 5000ull})
        h.add(v);
    const telemetry::Snapshot delta =
        before.deltaTo(telemetry::snapshot());
    ASSERT_TRUE(delta.histograms.count("test.hist"));
    const telemetry::Snapshot::Hist &hist =
        delta.histograms.at("test.hist");
    EXPECT_EQ(hist.count, 5u);
    EXPECT_EQ(hist.sum, 5203u);
    EXPECT_NEAR(hist.mean(), 5203.0 / 5.0, 1e-9);
    // p50 of {1,2,100,100,5000} sits in 100's bucket [64,127].
    EXPECT_GE(hist.quantile(0.5), 2.0);
    EXPECT_LE(hist.quantile(0.5), 128.0);
}

TEST(TelemetrySnapshot, EmptyAndDelta)
{
    telemetry::Snapshot zero;
    EXPECT_TRUE(zero.empty());

    telemetry::Snapshot a, b;
    a.counters["x"] = 3;
    b.counters["x"] = 10;
    b.counters["y"] = 2;
    const telemetry::Snapshot d = a.deltaTo(b);
    EXPECT_FALSE(d.empty());
    EXPECT_EQ(d.counters.at("x"), 7u);
    EXPECT_EQ(d.counters.at("y"), 2u);
}

TEST(TelemetrySnapshot, DeterministicCountersExcludePoolPrefix)
{
    telemetry::Snapshot s;
    s.counters["engine.cycles"] = 10;
    s.counters["spap.jumps"] = 5;
    s.counters["pool.tasks"] = 7;
    s.counters["pool.queue_high_water"] = 3;
    const auto det = s.deterministicCounters();
    EXPECT_EQ(det.size(), 2u);
    EXPECT_TRUE(det.count("engine.cycles"));
    EXPECT_TRUE(det.count("spap.jumps"));
    EXPECT_FALSE(det.count("pool.tasks"));
}

TEST(TelemetrySnapshot, JsonRoundTrip)
{
    telemetry::Snapshot s;
    s.counters["spap.jumps"] = 123;
    s.counters["engine.cycles"] = 456789;
    s.gauges["pool.workers"] = 4;
    telemetry::Snapshot::Hist &h = s.histograms["phase.flatten_us"];
    h.count = 3;
    h.sum = 300;
    h.buckets[0] = 1;
    h.buckets[7] = 2;

    std::ostringstream out;
    telemetry::writeSnapshotJson(out, s, "CAV");
    // Add a non-telemetry line and a blank: both must be skipped.
    out << "{\"record\":\"table\",\"title\":\"x\"}\n\n";
    telemetry::writeSnapshotJson(out, s, "*");

    std::istringstream in(out.str());
    std::string error;
    const std::vector<telemetry::NamedSnapshot> records =
        telemetry::readTelemetryRecords(in, &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].app, "CAV");
    EXPECT_EQ(records[1].app, "*");

    const telemetry::Snapshot &r = records[0].snap;
    EXPECT_EQ(r.counters, s.counters);
    EXPECT_EQ(r.gauges, s.gauges);
    ASSERT_TRUE(r.histograms.count("phase.flatten_us"));
    const telemetry::Snapshot::Hist &rh =
        r.histograms.at("phase.flatten_us");
    EXPECT_EQ(rh.count, h.count);
    EXPECT_EQ(rh.sum, h.sum);
    EXPECT_EQ(rh.buckets, h.buckets);
}

/** One small SpAP pipeline run; returns its deterministic counter delta
 *  and adds the executed SpAP batch count to @p batches. */
std::map<std::string, uint64_t>
spapCounterDelta(const AppTopology &topo, ExecutionOptions opts,
                 const PreparedPartition &prep, unsigned jobs,
                 size_t *batches)
{
    opts.jobs = jobs;
    const telemetry::Snapshot before = telemetry::snapshot();
    const SpapRunStats stats =
        runBaseApSpap(topo, opts, prep, /*collect_reports=*/false);
    *batches += stats.spApBatches;
    return before.deltaTo(telemetry::snapshot()).deterministicCounters();
}

TEST(TelemetryDeterminism, CounterDeltasIdenticalAcrossJobCounts)
{
    // Same trio as test_parallel_executor: between them the configs
    // exercise multi-batch SpAP execution.
    size_t spap_batches_total = 0;
    for (const char *abbr : {"CAV", "Snort", "PEN"}) {
        Workload w = generateWorkload(abbr, 11, 5);
        Rng rng(991);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, 8192, rng);
        AppTopology topo(w.app);

        ExecutionOptions opts;
        opts.ap.capacity =
            std::max<size_t>(w.app.totalStates() / 6, 64);
        opts.profileFraction = 0.001;
        opts.fullInputAsTest = w.fullInputAsTest;
        const PreparedPartition prep =
            preparePartition(topo, opts, input);
        // Populate the partition's lazy hot-run cache up front so both
        // measured runs do identical work (the first caller would
        // otherwise absorb the engine.* counters of the cached run).
        prep.hotRunResult();

        const auto serial =
            spapCounterDelta(topo, opts, prep, 1, &spap_batches_total);
        size_t ignored = 0;
        const auto parallel =
            spapCounterDelta(topo, opts, prep, 8, &ignored);
        EXPECT_EQ(serial, parallel) << abbr;
        EXPECT_TRUE(serial.count("spap.runs")) << abbr;
    }
    // The comparison is only meaningful if SpAP mode actually ran.
    EXPECT_GT(spap_batches_total, 0u);
}

TEST(TelemetryDeterminism, LogReplayUnchangedByActiveTraceSession)
{
    EXPECT_TRUE(kEnvReady);
    auto sweepLogs = [] {
        ExperimentRunner runner;
        std::ostringstream errs;
        std::streambuf *old = std::cerr.rdbuf(errs.rdbuf());
        runner.forEachApp("HML", [](const LoadedApp &, size_t) {}, 8);
        std::cerr.rdbuf(old);
        return errs.str();
    };

    const std::string plain = sweepLogs();
    const std::string trace_path = scratchPath("replay_trace");
    std::string traced;
    {
        telemetry::TraceSession session(trace_path);
        EXPECT_TRUE(telemetry::traceEnabled());
        traced = sweepLogs();
    }
    EXPECT_FALSE(telemetry::traceEnabled());
    EXPECT_EQ(plain, traced);
    EXPECT_NE(plain.find("generated EM"), std::string::npos);
    std::remove(trace_path.c_str());
}

TEST(TelemetryTrace, SessionCoversEveryPipelinePhase)
{
    const std::string path = scratchPath("trace");
    {
        telemetry::TraceSession session(path);

        size_t spap_batches_total = 0;
        for (const char *abbr : {"CAV", "Snort", "PEN"}) {
            Workload w = generateWorkload(abbr, 11, 5);
            Rng rng(991);
            const std::vector<uint8_t> input =
                synthesizeInput(w.input, 8192, rng);
            AppTopology topo(w.app);

            ExecutionOptions opts;
            opts.ap.capacity =
                std::max<size_t>(w.app.totalStates() / 6, 64);
            opts.profileFraction = 0.001;
            opts.fullInputAsTest = w.fullInputAsTest;
            const PreparedPartition prep =
                preparePartition(topo, opts, input);
            spap_batches_total +=
                runBaseApSpap(topo, opts, prep, false).spApBatches;
        }
        // spap.batch spans only exist if SpAP batches actually ran.
        ASSERT_GT(spap_batches_total, 0u);
    } // session destructor flushes

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string trace = buf.str();
    std::remove(path.c_str());

    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    for (const char *span : {"flatten", "profile", "partition", "fill",
                             "hot_run", "spap.batch"}) {
        EXPECT_NE(trace.find("\"name\":\"" + std::string(span) + "\""),
                  std::string::npos)
            << "missing span " << span;
    }
    // Every event is a complete event with explicit duration.
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
    // The spap.batch span carries its batch index and event count.
    EXPECT_NE(trace.find("\"batch\":"), std::string::npos);
    EXPECT_NE(trace.find("\"events\":"), std::string::npos);
}

/** Restrict a counter map to one prefix (sweep-owned metrics only). */
std::map<std::string, uint64_t>
withPrefix(const std::map<std::string, uint64_t> &m,
           const std::string &prefix)
{
    std::map<std::string, uint64_t> out;
    for (const auto &[k, v] : m) {
        if (k.rfind(prefix, 0) == 0)
            out[k] = v;
    }
    return out;
}

TEST(TelemetrySweep, PerAppRecordsCrossCheckAgainstRunStats)
{
    EXPECT_TRUE(kEnvReady);
    const std::string json_path = getenv("SPARSEAP_JSON");

    auto countRecords = [&] {
        std::ifstream in(json_path);
        std::string error;
        return telemetry::readTelemetryRecords(in, &error).size();
    };
    const size_t already = countRecords();

    // Serial sweep: forEachApp writes one exact per-app record each.
    ExperimentRunner runner;
    const std::vector<std::string> apps = runner.selectApps("HML");
    std::vector<SpapRunStats> rows(apps.size());
    runner.forEachApp(
        "HML",
        [&](const LoadedApp &app, size_t i) {
            const size_t capacity =
                app.workload.app.totalStates() / 4 + 8;
            rows[i] = runAppConfig(app, 0.01, capacity);
        },
        /*jobs=*/1);

    std::ifstream in(json_path);
    ASSERT_TRUE(in.good()) << json_path;
    std::string error;
    std::vector<telemetry::NamedSnapshot> records =
        telemetry::readTelemetryRecords(in, &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_GE(records.size(), already + apps.size());
    records.erase(records.begin(),
                  records.begin() + static_cast<ptrdiff_t>(already));

    // One record per app, tagged in catalog order, whose spap.* counters
    // equal that app's own SpapRunStats — the per-app attribution is
    // exact when the sweep runs on one lane.
    ASSERT_EQ(records.size(), apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        EXPECT_EQ(records[i].app, apps[i]);
        const auto &c = records[i].snap.counters;
        auto counter = [&](const char *name) -> uint64_t {
            auto it = c.find(name);
            return it != c.end() ? it->second : 0;
        };
        EXPECT_EQ(counter("spap.jumps"), rows[i].jumps) << apps[i];
        EXPECT_EQ(counter("spap.enables"), rows[i].enables) << apps[i];
        EXPECT_EQ(counter("spap.estalls"), rows[i].enableStalls)
            << apps[i];
        EXPECT_EQ(counter("spap.intermediate_reports"),
                  rows[i].intermediateReports)
            << apps[i];
        EXPECT_EQ(counter("spap.skipped_symbols"),
                  rows[i].skippedSymbols)
            << apps[i];
    }

    // Parallel sweep of the same work: one cumulative "*" record whose
    // spap.* counters equal the sum of the serial per-app records.
    const size_t before_parallel = already + records.size();
    ExperimentRunner parallel_runner;
    parallel_runner.forEachApp(
        "HML",
        [&](const LoadedApp &app, size_t) {
            const size_t capacity =
                app.workload.app.totalStates() / 4 + 8;
            runAppConfig(app, 0.01, capacity);
        },
        /*jobs=*/8);

    std::ifstream in2(json_path);
    std::vector<telemetry::NamedSnapshot> all =
        telemetry::readTelemetryRecords(in2, &error);
    ASSERT_GT(all.size(), before_parallel);
    const telemetry::NamedSnapshot &cumulative = all.back();
    EXPECT_EQ(cumulative.app, "*");

    std::map<std::string, uint64_t> summed;
    for (const telemetry::NamedSnapshot &r : records) {
        for (const auto &[k, v] :
             withPrefix(r.snap.counters, "spap."))
            summed[k] += v;
    }
    EXPECT_EQ(withPrefix(cumulative.snap.counters, "spap."), summed);
}

} // namespace
} // namespace sparseap
