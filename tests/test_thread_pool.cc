/** @file Tests for the thread pool and parallelFor helper. */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace sparseap {
namespace {

TEST(ThreadPool, SubmitRunsTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    std::mutex m;
    std::condition_variable cv;
    for (int i = 0; i < 10; ++i) {
        pool.submit([&] {
            if (count.fetch_add(1) + 1 == 10) {
                std::lock_guard<std::mutex> lock(m);
                cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return count.load() == 10; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    for (size_t jobs : {size_t{1}, size_t{2}, size_t{4}, size_t{13}}) {
        const size_t n = 257;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(jobs, n, [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ParallelFor, PerIndexSlotsGiveDeterministicResults)
{
    const size_t n = 1000;
    std::vector<uint64_t> serial(n), parallel(n);
    auto work = [](size_t i) {
        uint64_t h = i * 0x9e3779b97f4a7c15ull;
        h ^= h >> 29;
        return h;
    };
    parallelFor(1, n, [&](size_t i) { serial[i] = work(i); });
    parallelFor(8, n, [&](size_t i) { parallel[i] = work(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, EmptyAndSingleRanges)
{
    int runs = 0;
    parallelFor(4, 0, [&](size_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    parallelFor(4, 1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        parallelFor(4, 100,
                    [](size_t i) {
                        if (i == 37)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, MoreJobsThanHardwareStillCompletes)
{
    std::atomic<size_t> sum{0};
    parallelFor(64, 200, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 200u * 199u / 2);
}

} // namespace
} // namespace sparseap
