/** @file Tests for the AP cycle/timing model. */

#include <gtest/gtest.h>

#include "ap/timing.h"
#include "regex/glushkov.h"

namespace sparseap {
namespace {

TEST(Timing, BaselineCyclesAreBatchesTimesInput)
{
    Application app("a", "A");
    for (int i = 0; i < 5; ++i)
        app.addNfa(compileRegex("abcdefgh", "p"));
    ApConfig config;
    config.capacity = 20; // two NFAs per batch -> 3 batches
    BaselineTiming t = baselineTiming(app, config, 1000);
    EXPECT_EQ(t.batches, 3u);
    EXPECT_EQ(t.cycles, 3000u);
    EXPECT_NEAR(t.seconds, 3000 * 7.5e-9, 1e-15);
}

TEST(Timing, CyclesToSeconds)
{
    ApConfig config;
    EXPECT_NEAR(config.cyclesToSeconds(2.0), 15e-9, 1e-18);
    config.cycleTimeNs = 10.0;
    EXPECT_NEAR(config.cyclesToSeconds(5.0), 50e-9, 1e-18);
}

TEST(Timing, PerformancePerSte)
{
    // One symbol per cycle at capacity 100: 1/100 per STE.
    EXPECT_DOUBLE_EQ(performancePerSte(1000, 1000, 100), 0.01);
    // Two batches halve throughput.
    EXPECT_DOUBLE_EQ(performancePerSte(1000, 2000, 100), 0.005);
    // Zero cycles: defined as zero.
    EXPECT_DOUBLE_EQ(performancePerSte(1000, 0, 100), 0.0);
}

TEST(Timing, PerfPerSteDecreasesWithCapacityWhenAppFits)
{
    // The same app on a bigger AP wastes STEs (Fig. 11's first finding).
    const double small = performancePerSte(1000, 1000, 12288);
    const double large = performancePerSte(1000, 1000, 49152);
    EXPECT_GT(small, large);
}

TEST(Timing, IdealSpeedupModel)
{
    // Section III-C: speedup = ceil(S/C) / ceil((1-p)S/C).
    EXPECT_DOUBLE_EQ(idealSpeedup(100, 0, 10), 1.0);
    EXPECT_DOUBLE_EQ(idealSpeedup(100, 50, 10), 2.0);
    EXPECT_DOUBLE_EQ(idealSpeedup(100, 90, 10), 10.0);
    // Approaches 1/(1-p) for large S.
    EXPECT_NEAR(idealSpeedup(1000000, 500000, 1000), 2.0, 0.01);
    // All-cold degenerates to the one-batch floor, not division by zero.
    EXPECT_GT(idealSpeedup(100, 100, 10), 0.0);
}

TEST(Timing, IdealSpeedupMonotoneInColdStates)
{
    double prev = 0.0;
    for (size_t cold = 0; cold <= 900; cold += 100) {
        const double s = idealSpeedup(1000, cold, 50);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

} // namespace
} // namespace sparseap
