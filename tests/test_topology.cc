/** @file Tests for topological layering and normalized depth. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/topology.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

Nfa
fromEdges(size_t states, std::vector<std::pair<StateId, StateId>> edges)
{
    Nfa nfa("g");
    for (size_t i = 0; i < states; ++i)
        nfa.addState(SymbolSet::all(),
                     i == 0 ? StartKind::AllInput : StartKind::None);
    for (auto [u, v] : edges)
        nfa.addEdge(u, v);
    nfa.finalize();
    return nfa;
}

TEST(Topology, ChainLayers)
{
    Nfa nfa = fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
    Topology t = analyzeTopology(nfa);
    EXPECT_EQ(t.order, (std::vector<uint32_t>{1, 2, 3, 4}));
    EXPECT_EQ(t.maxOrder, 4u);
}

TEST(Topology, DiamondUsesLongestPath)
{
    //    0 -> 1 -> 3,  0 -> 3 : 3 sits at layer 3, not 2.
    Nfa nfa = fromEdges(4, {{0, 1}, {1, 3}, {0, 3}, {0, 2}});
    Topology t = analyzeTopology(nfa);
    EXPECT_EQ(t.order[0], 1u);
    EXPECT_EQ(t.order[1], 2u);
    EXPECT_EQ(t.order[2], 2u);
    EXPECT_EQ(t.order[3], 3u);
}

TEST(Topology, CycleSharesLayer)
{
    // Figure 4 of the paper: S4 <-> S5 share a layer.
    Nfa nfa = fromEdges(6, {{0, 1},
                            {0, 3},
                            {1, 2},
                            {3, 4},
                            {4, 3},
                            {4, 5},
                            {2, 5}});
    Topology t = analyzeTopology(nfa);
    EXPECT_EQ(t.order[3], t.order[4]);
    EXPECT_GT(t.order[5], t.order[4]);
    EXPECT_GT(t.order[5], t.order[2]);
}

TEST(Topology, SelfLoopKeepsOwnLayer)
{
    Nfa nfa = fromEdges(3, {{0, 1}, {1, 1}, {1, 2}});
    Topology t = analyzeTopology(nfa);
    EXPECT_EQ(t.order, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(Topology, NormalizedDepthRange)
{
    Nfa nfa = fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
    Topology t = analyzeTopology(nfa);
    EXPECT_DOUBLE_EQ(t.normalizedDepth(0), 0.25);
    EXPECT_DOUBLE_EQ(t.normalizedDepth(3), 1.0);
}

TEST(Topology, DepthBuckets)
{
    EXPECT_EQ(depthBucket(0.0), DepthBucket::Shallow);
    EXPECT_EQ(depthBucket(0.29), DepthBucket::Shallow);
    EXPECT_EQ(depthBucket(0.3), DepthBucket::Medium);
    EXPECT_EQ(depthBucket(0.59), DepthBucket::Medium);
    EXPECT_EQ(depthBucket(0.6), DepthBucket::Deep);
    EXPECT_EQ(depthBucket(1.0), DepthBucket::Deep);
    EXPECT_STREQ(depthBucketName(DepthBucket::Shallow), "shallow");
    EXPECT_STREQ(depthBucketName(DepthBucket::Medium), "medium");
    EXPECT_STREQ(depthBucketName(DepthBucket::Deep), "deep");
}

/**
 * Property: cross-SCC edges go strictly deeper; intra-SCC edges stay on
 * one layer. This is the invariant that makes the partition cut
 * unidirectional (DESIGN.md invariant 2).
 */
TEST(Topology, PropertyEdgeMonotonicity)
{
    Rng rng(66);
    for (int trial = 0; trial < 60; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.4;
        params.maxStates = 40;
        Nfa nfa = testing::randomNfa(rng, params);
        Topology t = analyzeTopology(nfa);

        for (StateId u = 0; u < nfa.size(); ++u) {
            for (StateId v : nfa.state(u).successors) {
                if (t.scc.component[u] == t.scc.component[v]) {
                    EXPECT_EQ(t.order[u], t.order[v]);
                } else {
                    EXPECT_LT(t.order[u], t.order[v])
                        << "edge " << u << "->" << v;
                }
            }
        }
        // Layers span [1, maxOrder] and normalized depth lies in (0, 1].
        for (StateId s = 0; s < nfa.size(); ++s) {
            EXPECT_GE(t.order[s], 1u);
            EXPECT_LE(t.order[s], t.maxOrder);
            EXPECT_GT(t.normalizedDepth(s), 0.0);
            EXPECT_LE(t.normalizedDepth(s), 1.0);
        }
    }
}

/** Property: some state sits on layer 1 and some on maxOrder. */
TEST(Topology, PropertyLayerExtremesOccupied)
{
    Rng rng(67);
    for (int trial = 0; trial < 30; ++trial) {
        Nfa nfa = testing::randomNfa(rng, {});
        Topology t = analyzeTopology(nfa);
        bool has_first = false, has_last = false;
        for (StateId s = 0; s < nfa.size(); ++s) {
            has_first = has_first || t.order[s] == 1;
            has_last = has_last || t.order[s] == t.maxOrder;
        }
        EXPECT_TRUE(has_first);
        EXPECT_TRUE(has_last);
    }
}

} // namespace
} // namespace sparseap
