/**
 * @file
 * Rolling-window math: Histogram quantile edge cases (empty, single
 * bucket, saturated top bucket, merged disjoint shards) and WindowRing
 * delta/rate semantics (horizon anchoring, ring wraparound, counter
 * reset clamping, windowed histogram quantiles).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/stats.h"
#include "telemetry/window.h"

using namespace sparseap;
using telemetry::Snapshot;
using telemetry::WindowRing;
using telemetry::WindowView;

namespace {

Snapshot
counterSnap(const char *name, uint64_t value)
{
    Snapshot s;
    s.counters[name] = value;
    return s;
}

constexpr uint64_t kSecond = 1000 * 1000;

} // namespace

// ------------------------------------------------- histogram quantiles --

TEST(HistogramQuantile, EmptyHistogramIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);

    const std::array<uint64_t, Histogram::kBuckets> empty{};
    EXPECT_DOUBLE_EQ(
        Histogram::quantileFromBuckets({empty.data(), empty.size()},
                                       0.99),
        0.0);
}

TEST(HistogramQuantile, SingleBucketStaysInsideBucketRange)
{
    // Every sample is 5 => bucket [4, 7]; any quantile must be
    // estimated inside that bucket, never outside it.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.add(5);
    const size_t b = Histogram::bucketOf(5);
    for (double q : {0.0, 0.01, 0.5, 0.95, 1.0}) {
        const double est = h.quantile(q);
        EXPECT_GE(est, static_cast<double>(Histogram::bucketLow(b)))
            << "q=" << q;
        EXPECT_LE(est, static_cast<double>(Histogram::bucketHigh(b)))
            << "q=" << q;
    }
}

TEST(HistogramQuantile, SaturatedTopBucket)
{
    // All samples at the top of the uint64 range land in the last
    // bucket; quantiles must stay inside it and remain finite.
    Histogram h;
    const uint64_t top = std::numeric_limits<uint64_t>::max();
    for (int i = 0; i < 10; ++i)
        h.add(top);
    const size_t b = Histogram::bucketOf(top);
    EXPECT_EQ(b, Histogram::kBuckets - 1);
    const double p99 = h.quantile(0.99);
    EXPECT_GE(p99, static_cast<double>(Histogram::bucketLow(b)));
    EXPECT_LE(p99, static_cast<double>(top));
}

TEST(HistogramQuantile, MergeOfDisjointShards)
{
    // Two shards with disjoint value ranges: the merge must place low
    // quantiles in the low shard's bucket and high quantiles in the
    // high shard's bucket, with counts and sums adding exactly.
    Histogram low, high;
    for (int i = 0; i < 100; ++i)
        low.add(2); // bucket [2, 3]
    for (int i = 0; i < 100; ++i)
        high.add(1024); // bucket [1024, 2047]

    low.merge(high);
    EXPECT_EQ(low.count(), 200u);
    EXPECT_EQ(low.sum(), 100u * 2 + 100u * 1024);
    EXPECT_EQ(low.min(), 2u);
    EXPECT_EQ(low.max(), 1024u);

    const double p25 = low.quantile(0.25);
    EXPECT_GE(p25, 2.0);
    EXPECT_LE(p25, 3.0);
    const double p75 = low.quantile(0.75);
    EXPECT_GE(p75, 1024.0);
    EXPECT_LE(p75, 2047.0);
}

// ------------------------------------------------------- window ring --

TEST(WindowRing, InvalidWithFewerThanTwoSamples)
{
    WindowRing ring(8);
    EXPECT_FALSE(ring.over(telemetry::kWindow10s).valid());

    ring.push(kSecond, counterSnap("x", 10));
    const WindowView view = ring.over(telemetry::kWindow10s);
    EXPECT_FALSE(view.valid());
    EXPECT_DOUBLE_EQ(view.rate("x"), 0.0);
}

TEST(WindowRing, RateIsDeltaOverCoveredSpan)
{
    WindowRing ring(8);
    ring.push(0, counterSnap("x", 100));
    ring.push(10 * kSecond, counterSnap("x", 200));

    const WindowView view = ring.over(telemetry::kWindow10s);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.spanMicros, 10 * kSecond);
    EXPECT_DOUBLE_EQ(view.rate("x"), 10.0); // 100 over 10 s
    EXPECT_DOUBLE_EQ(view.rate("absent"), 0.0);
}

TEST(WindowRing, HorizonAnchorsAtNewestSample)
{
    // Samples at 0/4/8/12 s; a 10 s horizon from the newest (12 s)
    // floors at 2 s, so the oldest retained sample is the one at 4 s:
    // span 8 s, delta = v(12s) - v(4s).
    WindowRing ring(8);
    ring.push(0, counterSnap("x", 0));
    ring.push(4 * kSecond, counterSnap("x", 40));
    ring.push(8 * kSecond, counterSnap("x", 80));
    ring.push(12 * kSecond, counterSnap("x", 120));

    const WindowView view = ring.over(telemetry::kWindow10s);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.spanMicros, 8 * kSecond);
    EXPECT_EQ(view.delta.counters.at("x"), 80u);
    EXPECT_DOUBLE_EQ(view.rate("x"), 10.0);

    // A wider horizon reaches all the way back to t = 0.
    const WindowView wide = ring.over(telemetry::kWindow1m);
    ASSERT_TRUE(wide.valid());
    EXPECT_EQ(wide.spanMicros, 12 * kSecond);
    EXPECT_EQ(wide.delta.counters.at("x"), 120u);
}

TEST(WindowRing, WraparoundDropsOldestSamples)
{
    // Capacity 4, six pushes: only the last four samples survive, so
    // even an unbounded horizon can only span them.
    WindowRing ring(4);
    for (uint64_t i = 1; i <= 6; ++i)
        ring.push(i * kSecond, counterSnap("x", i * 10));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.newestMicros(), 6 * kSecond);

    const WindowView view = ring.over(telemetry::kWindow5m);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.spanMicros, 3 * kSecond); // 3 s .. 6 s retained
    EXPECT_EQ(view.delta.counters.at("x"), 30u);
    EXPECT_DOUBLE_EQ(view.rate("x"), 10.0);
}

TEST(WindowRing, CounterResetClampsToZeroInsteadOfWrapping)
{
    WindowRing ring(4);
    ring.push(0, counterSnap("x", 100));
    ring.push(10 * kSecond, counterSnap("x", 40)); // went down

    const WindowView view = ring.over(telemetry::kWindow10s);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.delta.counters.at("x"), 0u);
    EXPECT_DOUBLE_EQ(view.rate("x"), 0.0); // never a wrapped uint64
}

TEST(WindowRing, ZeroSpanDuplicateTimestampIsInvalid)
{
    WindowRing ring(4);
    ring.push(kSecond, counterSnap("x", 10));
    ring.push(kSecond, counterSnap("x", 20));
    EXPECT_FALSE(ring.over(telemetry::kWindow10s).valid());
}

TEST(WindowRing, WindowedHistogramQuantileUsesBucketDeltas)
{
    // Before: 100 samples of 4. After: those plus 100 samples of 1024.
    // The windowed quantile sees only the *delta* (the 1024 batch).
    Snapshot before;
    {
        Snapshot::Hist h;
        h.count = 100;
        h.sum = 400;
        h.buckets[Histogram::bucketOf(4)] = 100;
        before.histograms["lat"] = h;
    }
    Snapshot after = before;
    {
        Snapshot::Hist &h = after.histograms["lat"];
        h.count += 100;
        h.sum += 100 * 1024;
        h.buckets[Histogram::bucketOf(1024)] += 100;
    }

    WindowRing ring(4);
    ring.push(0, before);
    ring.push(10 * kSecond, after);
    const WindowView view = ring.over(telemetry::kWindow10s);
    ASSERT_TRUE(view.valid());
    const double p50 = view.histQuantile("lat", 0.5);
    EXPECT_GE(p50, 1024.0);
    EXPECT_LE(p50, 2047.0);
    EXPECT_DOUBLE_EQ(view.histQuantile("absent", 0.5), 0.0);
}

TEST(WindowRing, ClearForgetsHistory)
{
    WindowRing ring(4);
    ring.push(0, counterSnap("x", 1));
    ring.push(kSecond, counterSnap("x", 2));
    ASSERT_TRUE(ring.over(telemetry::kWindow10s).valid());
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.newestMicros(), 0u);
    EXPECT_FALSE(ring.over(telemetry::kWindow10s).valid());
}
