/** @file Structural tests for the individual workload generators. */

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "partition/app_topology.h"
#include "sim/engine.h"
#include "sim/flat_automaton.h"
#include "workloads/becchi.h"
#include "workloads/brill.h"
#include "workloads/clamav.h"
#include "workloads/entity_resolution.h"
#include "workloads/fermi.h"
#include "workloads/hamming.h"
#include "workloads/levenshtein.h"
#include "workloads/poweren.h"
#include "workloads/protomata.h"
#include "workloads/random_forest.h"
#include "workloads/snort.h"
#include "workloads/spm.h"

namespace sparseap {
namespace {

TEST(HammingNfa, GridStructure)
{
    Nfa nfa = buildHammingNfa("ACGTACGT", 2, "hm");
    // Exactly two reporting states (the collapsed final column).
    EXPECT_EQ(nfa.reportingCount(), 2u);
    // Two always-enabled starts: first match and first mismatch states.
    EXPECT_EQ(nfa.startStates().size(), 2u);
    // Depth equals the pattern length.
    Topology t = analyzeTopology(nfa);
    EXPECT_EQ(t.maxOrder, 8u);
    // The grid is a DAG.
    EXPECT_EQ(t.scc.largestSize(), 1u);
}

TEST(HammingNfa, AcceptsWithinDistance)
{
    const std::string pattern = "AAAA";
    Nfa nfa = buildHammingNfa(pattern, 2, "hm");
    Application app("t", "T");
    app.addNfa(std::move(nfa));
    FlatAutomaton fa(app);
    Engine engine(fa);

    auto match_count = [&](const std::string &s) {
        return engine
            .run({reinterpret_cast<const uint8_t *>(s.data()), s.size()})
            .reports.size();
    };
    EXPECT_GT(match_count("AAAA"), 0u); // exact
    EXPECT_GT(match_count("AACA"), 0u); // 1 mismatch
    EXPECT_GT(match_count("ACCA"), 0u); // 2 mismatches
    EXPECT_EQ(match_count("ACCC"), 0u); // 3 mismatches: rejected
}

TEST(HammingWorkload, SizesAndInput)
{
    Rng rng(1);
    HammingParams p;
    p.nfaCount = 20;
    Workload w = makeHamming(p, rng, "hm", "HM");
    EXPECT_EQ(w.app.nfaCount(), 20u);
    EXPECT_EQ(w.app.reportingStates(), 40u); // 2 per NFA
    EXPECT_FALSE(w.fullInputAsTest);
    EXPECT_EQ(w.input.base, InputSpec::Base::Alphabet);
}

TEST(LevenshteinNfa, HasLargeScc)
{
    Nfa nfa = buildLevenshteinNfa("ACGTACGTACGTACGTACGT", 2, "lv");
    Topology t = analyzeTopology(nfa);
    // Resync back edges must collapse a sizable region into one SCC.
    EXPECT_GT(t.scc.largestSize(), nfa.size() / 4);
}

TEST(ClamAvWorkload, DeepChains)
{
    Rng rng(2);
    ClamAvParams p;
    p.nfaCount = 30;
    p.meanLength = 60;
    p.maxLength = 300;
    Workload w = makeClamAv(p, rng, "cav", "CAV");
    EXPECT_EQ(w.app.nfaCount(), 30u);
    AppTopology topo(w.app);
    // The pinned max-length signature sets the depth (wildcard gap
    // detours may add a few layers on top).
    EXPECT_GE(topo.maxOrder(), 300u);
    EXPECT_LE(topo.maxOrder(), 320u);
    EXPECT_GE(w.app.reportingStates(), 30u);
    EXPECT_FALSE(w.input.plants.empty());
}

TEST(SnortWorkload, CompilesAndPlants)
{
    Rng rng(3);
    SnortParams p;
    p.nfaCount = 40;
    p.deepRuleCount = 1;
    p.deepRuleGap = 200;
    Workload w = makeSnort(p, rng, "snort", "SN");
    EXPECT_EQ(w.app.nfaCount(), 40u);
    AppTopology topo(w.app);
    EXPECT_GT(topo.maxOrder(), 200u); // the deep count rule
    EXPECT_FALSE(w.input.plants.empty());
}

TEST(SpmWorkload, AnchoredWithSelfLoops)
{
    Rng rng(4);
    SpmParams p;
    p.nfaCount = 25;
    Workload w = makeSpm(p, rng, "spm", "SPM");
    EXPECT_TRUE(w.fullInputAsTest);
    EXPECT_TRUE(w.app.startOfDataOnly());
    // Every NFA has exactly one reporting state (the last item).
    EXPECT_EQ(w.app.reportingStates(), 25u);
    // Gap states self-loop: at least one state with a self-edge.
    bool self_loop = false;
    for (const auto &nfa : w.app.nfas()) {
        for (StateId s = 0; s < nfa.size(); ++s) {
            for (StateId d : nfa.state(s).successors)
                self_loop = self_loop || d == s;
        }
    }
    EXPECT_TRUE(self_loop);
}

TEST(FermiWorkload, AnchoredAndShallow)
{
    Rng rng(5);
    FermiParams p;
    p.nfaCount = 25;
    Workload w = makeFermi(p, rng, "fermi", "Fermi");
    EXPECT_TRUE(w.fullInputAsTest);
    EXPECT_TRUE(w.app.startOfDataOnly());
    AppTopology topo(w.app);
    EXPECT_LE(topo.maxOrder(), 16u);
}

TEST(RandomForestWorkload, DepthThree)
{
    Rng rng(6);
    RandomForestParams p;
    p.nfaCount = 30;
    Workload w = makeRandomForest(p, rng, "rf", "RF");
    AppTopology topo(w.app);
    EXPECT_EQ(topo.maxOrder(), 3u);
    EXPECT_EQ(w.app.reportingStates(), 30u); // one label leaf per tree
    // Every NFA has exactly `roots` start states.
    for (const auto &nfa : w.app.nfas())
        EXPECT_EQ(nfa.startStates().size(), p.roots);
}

TEST(EntityResolutionWorkload, GiantScc)
{
    Rng rng(7);
    EntityResolutionParams p;
    p.nfaCount = 10;
    Workload w = makeEntityResolution(p, rng, "er", "ER");
    AppTopology topo(w.app);
    // The token loop holds most of each NFA in one SCC.
    EXPECT_GT(topo.largestScc(),
              w.app.nfa(0).size() / 2);
    EXPECT_EQ(w.app.reportingStates(), 10u);
    // The reporting state sits inside the SCC: its layer is pinned to
    // the ring's, so one hot member forces the whole ring configured.
    const Nfa &nfa = w.app.nfa(0);
    StateId reporter = kInvalidState;
    for (StateId s = 0; s < nfa.size(); ++s)
        if (nfa.state(s).reporting)
            reporter = s;
    ASSERT_NE(reporter, kInvalidState);
    const Topology &t = topo.nfa(0);
    EXPECT_GT(t.scc.members[t.scc.component[reporter]].size(), 1u);
}

TEST(EntityResolutionWorkload, VerificationTailHangsOffTheRing)
{
    Rng rng(8);
    EntityResolutionParams p;
    p.nfaCount = 4;
    p.exitLength = 6;
    p.exitFanIn = 4;
    Workload w = makeEntityResolution(p, rng, "er", "ER");
    const Topology t = analyzeTopology(w.app.nfa(0));
    // The tail adds layers below the ring.
    EXPECT_GT(t.maxOrder, 5u);
    // Openers come from a shared pool: with 4 NFAs and a 12-token pool,
    // all openers are distinct but drawn from the pool (same length).
    for (const auto &nfa : w.app.nfas())
        EXPECT_EQ(nfa.state(0).symbols.count(), 1);
}

TEST(PowerEnWorkload, StormLayerShape)
{
    Rng rng(8);
    PowerEnParams p;
    p.nfaCount = 20;
    Workload w = makePowerEn(p, rng, "pen", "PEN");
    EXPECT_EQ(w.app.nfaCount(), 20u);
    // Input model: digits are late-only.
    EXPECT_EQ(w.input.lateBytes, "0123456789");
    EXPECT_GT(w.input.lateRate, 0.0);
    // Layer-3 of every NFA is the digit class.
    for (const auto &nfa : w.app.nfas()) {
        EXPECT_TRUE(nfa.state(2).symbols.test('5'));
        EXPECT_FALSE(nfa.state(2).symbols.test('a'));
    }
}

TEST(BrillWorkload, ChainsOverTagAlphabet)
{
    Rng rng(9);
    BrillParams p;
    p.nfaCount = 15;
    Workload w = makeBrill(p, rng, "brill", "Brill");
    EXPECT_EQ(w.app.nfaCount(), 15u);
    EXPECT_EQ(w.app.reportingStates(), 15u);
    EXPECT_FALSE(w.input.plants.empty());
}

TEST(ProtomataWorkload, AminoAlphabet)
{
    Rng rng(10);
    ProtomataParams p;
    p.nfaCount = 30;
    p.longMotifProb = 0.2;
    Workload w = makeProtomata(p, rng, "pro", "Pro");
    EXPECT_EQ(w.app.nfaCount(), 30u);
    AppTopology topo(w.app);
    EXPECT_GT(topo.maxOrder(), 50u); // some long motif was drawn
}

TEST(BecchiWorkload, DotStarProbabilityControlsSelfLoops)
{
    Rng rng(11);
    BecchiParams no_ds;
    no_ds.nfaCount = 20;
    no_ds.dotStarProb = 0.0;
    Workload w0 = makeBecchi(no_ds, rng, "em", "EM");

    BecchiParams all_ds;
    all_ds.nfaCount = 20;
    all_ds.dotStarProb = 1.0;
    Workload w1 = makeBecchi(all_ds, rng, "ds", "DS");

    auto self_loops = [](const Application &app) {
        size_t n = 0;
        for (const auto &nfa : app.nfas())
            for (StateId s = 0; s < nfa.size(); ++s)
                for (StateId d : nfa.state(s).successors)
                    n += d == s;
        return n;
    };
    EXPECT_EQ(self_loops(w0.app), 0u);
    EXPECT_GT(self_loops(w1.app), 0u);
}

TEST(BecchiWorkload, RangeFraction)
{
    Rng rng(12);
    BecchiParams p;
    p.nfaCount = 10;
    p.rangeFraction = 1.0;
    Workload w = makeBecchi(p, rng, "rg", "Rg1");
    // With rangeFraction 1, every state accepts more than one byte.
    for (const auto &nfa : w.app.nfas())
        for (const auto &st : nfa.states())
            EXPECT_GT(st.symbols.count(), 1);
}

} // namespace
} // namespace sparseap
