/**
 * @file
 * apclient: CLI for the apserved daemon.
 *
 *   apclient --socket PATH ping
 *   apclient --socket PATH stats
 *   apclient --socket PATH match TENANT FILE
 *   apclient --socket PATH stream TENANT FILE [--chunk N]
 *   apclient --socket PATH bench --apps A[,B...] [--streams N]
 *            [--chunk N] [--passes N]
 *
 * `match` runs one whole-input match; `stream` opens a stream, feeds
 * FILE ('-' = stdin) chunk by chunk and closes — both print the report
 * count and the order-canonicalized digest, so their output can be
 * diffed against a local Engine::run of the same bytes. `bench` drives
 * N concurrent streams (round-robin across the named tenants, each on
 * its own connection) through the daemon feeding each tenant's
 * synthesized workload input, and prints one JSON line with aggregate
 * MB/s, request-latency percentiles, and overload/retry counts — the
 * CI serve-smoke job asserts on those fields.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sparseap.h"
#include "serve/client.h"
#include "store/format.h"

using namespace sparseap;
using serve::ServeClient;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: apclient --socket PATH <command>\n"
        "  ping\n"
        "  stats\n"
        "  match TENANT FILE\n"
        "  stream TENANT FILE [--chunk N]\n"
        "  bench --apps A[,B...] [--streams N] [--chunk N] [--passes N]\n");
    return 2;
}

std::vector<uint8_t>
readInput(const std::string &path)
{
    if (path == "-") {
        return std::vector<uint8_t>(
            std::istreambuf_iterator<char>(std::cin),
            std::istreambuf_iterator<char>());
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '", path, "'");
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

/** Order-canonicalized digest (matches the serve tests' gate). */
uint64_t
sortedDigest(ReportList reports)
{
    std::sort(reports.begin(), reports.end());
    store::DigestBuilder d;
    for (const Report &r : reports) {
        d.add(r.position);
        d.add(r.state);
    }
    return d.digest();
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

int
cmdPing(ServeClient &client)
{
    const auto r = client.ping();
    std::printf("%s\n",
                r.status == ServeClient::Status::Ok ? "pong" : "FAIL");
    return r.status == ServeClient::Status::Ok ? 0 : 1;
}

int
cmdStats(ServeClient &client)
{
    serve::StatsReply reply;
    const auto r = client.stats(&reply);
    if (r.status != ServeClient::Status::Ok) {
        std::fprintf(stderr, "stats failed\n");
        return 1;
    }
    for (const auto &[key, value] : reply.counters)
        std::printf("%-28s %llu\n", key.c_str(),
                    static_cast<unsigned long long>(value));
    return 0;
}

int
cmdMatch(ServeClient &client, const std::string &tenant,
         const std::string &file)
{
    const std::vector<uint8_t> input = readInput(file);
    serve::ReportGroup group;
    const auto r = client.match(tenant, input, &group);
    if (r.status != ServeClient::Status::Ok) {
        std::fprintf(stderr, "match failed: %s\n",
                     r.error.message.c_str());
        return 1;
    }
    std::printf("bytes=%zu reports=%zu digest=%016llx\n", input.size(),
                group.reports.size(),
                static_cast<unsigned long long>(
                    sortedDigest(group.reports)));
    return 0;
}

int
cmdStream(ServeClient &client, const std::string &tenant,
          const std::string &file, size_t chunk)
{
    const std::vector<uint8_t> input = readInput(file);
    if (client.open(tenant, 1).status != ServeClient::Status::Ok) {
        std::fprintf(stderr, "open failed\n");
        return 1;
    }
    ReportList all;
    for (size_t off = 0; off < input.size(); off += chunk) {
        const size_t n = std::min(chunk, input.size() - off);
        serve::ReportGroup group;
        const auto r = client.feed(
            tenant, 1, {input.data() + off, n}, &group);
        if (r.status != ServeClient::Status::Ok) {
            std::fprintf(stderr, "feed failed at offset %zu\n", off);
            return 1;
        }
        all.insert(all.end(), group.reports.begin(),
                   group.reports.end());
    }
    serve::ReportGroup tail;
    if (client.closeStream(tenant, 1, &tail).status !=
        ServeClient::Status::Ok) {
        std::fprintf(stderr, "close failed\n");
        return 1;
    }
    all.insert(all.end(), tail.reports.begin(), tail.reports.end());
    std::printf("bytes=%zu reports=%zu digest=%016llx\n", input.size(),
                all.size(),
                static_cast<unsigned long long>(sortedDigest(all)));
    return 0;
}

struct BenchTotals
{
    std::mutex mu;
    Histogram latency; ///< per-feed round trip, microseconds
    uint64_t bytes = 0;
    uint64_t feeds = 0;
    uint64_t overload = 0;
    uint64_t retry = 0;
    uint64_t errors = 0;
};

/** One bench stream: own connection, open → chunked feeds → close. */
void
benchStream(const std::string &socket_path, const std::string &tenant,
            uint64_t stream_id, const std::vector<uint8_t> &input,
            size_t chunk, unsigned passes, BenchTotals *totals)
{
    ServeClient client;
    std::string error;
    Histogram latency;
    uint64_t bytes = 0, feeds = 0, overload = 0, retry = 0, errors = 0;
    if (!client.connect(socket_path, &error)) {
        std::lock_guard<std::mutex> lock(totals->mu);
        ++totals->errors;
        return;
    }
    // The open is admitted like any request and can be shed under
    // pressure: retry it with the same bounded backoff as feeds.
    bool opened = false;
    for (int attempt = 0; attempt < 1000 && !opened; ++attempt) {
        const auto r = client.open(tenant, stream_id);
        if (r.status == ServeClient::Status::Ok)
            opened = true;
        else if (r.status == ServeClient::Status::Overload)
            ++overload;
        else if (r.status == ServeClient::Status::Retry)
            ++retry;
        else
            break;
        if (!opened)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (!opened) {
        std::lock_guard<std::mutex> lock(totals->mu);
        totals->overload += overload;
        totals->retry += retry;
        ++totals->errors;
        return;
    }
    for (unsigned pass = 0; pass < passes; ++pass) {
        for (size_t off = 0; off < input.size(); off += chunk) {
            const size_t n = std::min(chunk, input.size() - off);
            // Overload/Retry are expected under pressure: count and
            // resend the same chunk (bounded, so a saturated server
            // cannot hang the bench).
            for (int attempt = 0; attempt < 1000; ++attempt) {
                serve::ReportGroup group;
                const auto t0 = std::chrono::steady_clock::now();
                const auto r = client.feed(
                    tenant, stream_id, {input.data() + off, n}, &group);
                const auto t1 = std::chrono::steady_clock::now();
                if (r.status == ServeClient::Status::Ok) {
                    latency.add(static_cast<uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(t1 - t0)
                            .count()));
                    bytes += n;
                    ++feeds;
                    break;
                }
                if (r.status == ServeClient::Status::Overload)
                    ++overload;
                else if (r.status == ServeClient::Status::Retry)
                    ++retry;
                else {
                    ++errors;
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
        }
    }
    client.closeStream(tenant, stream_id, nullptr);
    std::lock_guard<std::mutex> lock(totals->mu);
    totals->latency.merge(latency);
    totals->bytes += bytes;
    totals->feeds += feeds;
    totals->overload += overload;
    totals->retry += retry;
    totals->errors += errors;
}

int
cmdBench(const std::string &socket_path, const std::string &apps_arg,
         size_t streams, size_t chunk, unsigned passes)
{
    const std::vector<std::string> apps = splitList(apps_arg);
    if (apps.empty())
        return usage();

    // Tenant inputs: the same synthesized workload bytes the daemon's
    // apps were generated from (seed/scale from the environment).
    ExperimentRunner runner;
    std::vector<const std::vector<uint8_t> *> inputs;
    inputs.reserve(apps.size());
    for (const std::string &abbr : apps)
        inputs.push_back(&runner.load(abbr).input);

    BenchTotals totals;
    std::vector<std::thread> threads;
    threads.reserve(streams);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < streams; ++i) {
        const size_t a = i % apps.size();
        threads.emplace_back(benchStream, socket_path, apps[a],
                             static_cast<uint64_t>(i + 1),
                             std::cref(*inputs[a]), chunk, passes,
                             &totals);
    }
    for (std::thread &t : threads)
        t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::lock_guard<std::mutex> lock(totals.mu);
    std::printf(
        "{\"streams\":%zu,\"tenants\":%zu,\"chunk\":%zu,"
        "\"feeds\":%llu,\"bytes\":%llu,\"mb_per_s\":%.2f,"
        "\"p50_us\":%.0f,\"p95_us\":%.0f,\"p99_us\":%.0f,"
        "\"overload\":%llu,\"retry\":%llu,\"errors\":%llu}\n",
        streams, apps.size(), chunk,
        static_cast<unsigned long long>(totals.feeds),
        static_cast<unsigned long long>(totals.bytes),
        totals.bytes / wall / 1e6, totals.latency.p50(),
        totals.latency.p95(), totals.latency.p99(),
        static_cast<unsigned long long>(totals.overload),
        static_cast<unsigned long long>(totals.retry),
        static_cast<unsigned long long>(totals.errors));
    return totals.errors == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::vector<std::string> args;
    size_t chunk = 65536;
    size_t streams = 4;
    unsigned passes = 1;
    std::string apps_arg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value)
            socket_path = argv[++i];
        else if (arg == "--chunk" && has_value)
            chunk = std::stoul(argv[++i]);
        else if (arg == "--streams" && has_value)
            streams = std::stoul(argv[++i]);
        else if (arg == "--passes" && has_value)
            passes = static_cast<unsigned>(std::stoul(argv[++i]));
        else if (arg == "--apps" && has_value)
            apps_arg = argv[++i];
        else
            args.push_back(arg);
    }
    if (socket_path.empty() || args.empty())
        return usage();
    const std::string &cmd = args[0];

    if (cmd == "bench")
        return cmdBench(socket_path, apps_arg, streams, chunk, passes);

    ServeClient client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "apclient: %s\n", error.c_str());
        return 1;
    }
    if (cmd == "ping")
        return cmdPing(client);
    if (cmd == "stats")
        return cmdStats(client);
    if (cmd == "match" && args.size() == 3)
        return cmdMatch(client, args[1], args[2]);
    if (cmd == "stream" && args.size() == 3)
        return cmdStream(client, args[1], args[2], chunk);
    return usage();
}
