/**
 * @file
 * apserved: the streaming match daemon.
 *
 * Loads the named applications (from the artifact cache when warm — set
 * SPARSEAP_CACHE_DIR), registers each as a tenant of a MatchService,
 * and serves the framing protocol (serve/protocol.h) on a Unix-domain
 * socket until SIGINT/SIGTERM. apclient is the matching CLI.
 *
 *   apserved --socket /tmp/ap.sock --apps Bro217,Brill \
 *            [--workers N] [--resident N] [--queue N] [--tenant-cap N] \
 *            [--deadline-ms N] [--max-conns N] \
 *            [--metrics-file PATH] [--sample-ms N] [--slow-us N] \
 *            [--log PATH[:LEVEL]] [--no-obs]
 *
 * Engine knobs come from the usual environment (SPARSEAP_ENGINE,
 * SPARSEAP_SEED, SPARSEAP_SCALE, ...); the flags above size the serving
 * layer: --resident caps live engine sessions (rest are parked
 * snapshots), --queue/--tenant-cap/--deadline-ms configure admission
 * control (see docs/SERVING.md §Overload).
 *
 * Observability (docs/OBSERVABILITY.md): --metrics-file republishes a
 * Prometheus text exposition every sample period, --slow-us sets the
 * slow-request capture threshold, --log opens the structured JSON
 * event log (equivalent to SPARSEAP_LOG/SPARSEAP_LOG_LEVEL), and
 * --no-obs turns the whole serving-plane observability layer off.
 * `aptop --socket ...` is the live dashboard over the STATS reply.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/sparseap.h"
#include "serve/server.h"
#include "telemetry/event_log.h"

using namespace sparseap;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: apserved --socket PATH --apps A[,B...] [options]\n"
        "  --workers N      worker threads (default 4)\n"
        "  --resident N     live-session budget (default 64)\n"
        "  --queue N        admission queue depth (default 256)\n"
        "  --tenant-cap N   per-tenant in-flight cap (default 64)\n"
        "  --deadline-ms N  queue-wait deadline, 0 = none (default 0)\n"
        "  --max-conns N    connection cap (default 256)\n"
        "  --metrics-file P rewrite Prometheus exposition at P every "
        "sample\n"
        "  --sample-ms N    observer sample period (default 1000)\n"
        "  --slow-us N      slow-request capture threshold "
        "(default 250000)\n"
        "  --log P[:LEVEL]  JSON event log to P (-"
        " = stderr; level debug|info|warn|error)\n"
        "  --no-obs         disable serving-plane observability\n");
    return 2;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string apps_arg;
    std::string log_arg;
    serve::ServerConfig scfg;
    serve::MatchServiceConfig mcfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        auto value = [&]() -> std::string {
            return has_value ? argv[++i] : std::string();
        };
        if (arg == "--socket" && has_value)
            socket_path = value();
        else if (arg == "--apps" && has_value)
            apps_arg = value();
        else if (arg == "--workers" && has_value)
            scfg.workers = static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--resident" && has_value)
            mcfg.residentSessions = std::stoul(value());
        else if (arg == "--queue" && has_value)
            scfg.admission.queueDepth = std::stoul(value());
        else if (arg == "--tenant-cap" && has_value)
            scfg.admission.perTenantInFlight = std::stoul(value());
        else if (arg == "--deadline-ms" && has_value)
            scfg.admission.deadlineMicros = std::stoul(value()) * 1000;
        else if (arg == "--max-conns" && has_value)
            scfg.maxConnections = std::stoul(value());
        else if (arg == "--metrics-file" && has_value)
            scfg.observability.metricsPath = value();
        else if (arg == "--sample-ms" && has_value)
            scfg.observability.samplePeriodMillis = std::stoul(value());
        else if (arg == "--slow-us" && has_value)
            scfg.observability.slowRequestMicros = std::stoul(value());
        else if (arg == "--log" && has_value)
            log_arg = value();
        else if (arg == "--no-obs")
            scfg.observability.enabled = false;
        else
            return usage();
    }
    if (socket_path.empty() || apps_arg.empty())
        return usage();
    scfg.socketPath = socket_path;
    mcfg.tenantMetrics = scfg.observability.enabled;

    if (!log_arg.empty()) {
        std::string path = log_arg;
        telemetry::LogLevel level = telemetry::LogLevel::Info;
        const size_t colon = log_arg.rfind(':');
        if (colon != std::string::npos &&
            telemetry::parseLogLevel(log_arg.substr(colon + 1), &level))
            path = log_arg.substr(0, colon);
        telemetry::initEventLog(path, level);
    }

    // The runner owns the LoadedApps (and through them the automata);
    // it must outlive the service and the server, so the tenants' fa
    // pointers alias into it with no-op deleters.
    ExperimentRunner runner;
    serve::MatchService service(mcfg);
    for (const std::string &abbr : splitList(apps_arg)) {
        const LoadedApp &app = runner.load(abbr);
        const FlatAutomaton &fa = app.flat();
        inform("tenant ", abbr, ": ", fa.size(), " states",
               fa.ensureHotDfa() ? " (DFA)" : "");
        service.addTenant(
            abbr,
            std::shared_ptr<const FlatAutomaton>(&fa,
                                                 [](const auto *) {}));
    }

    serve::Server server(&service, scfg);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "apserved: %s\n", error.c_str());
        return 1;
    }

    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    const serve::StatsReply final_stats = server.statsReply();
    for (const auto &[key, v] : final_stats.counters)
        inform(key, " = ", v);
    return 0;
}
