/**
 * @file
 * apstat: pretty-print and diff telemetry snapshots.
 *
 * Bench binaries run with SPARSEAP_JSON=<file> append one telemetry
 * record per app (serial sweeps) or per sweep (parallel sweeps) to the
 * JSON-Lines trajectory file, alongside the table records. This tool
 * reads those records back:
 *
 *   apstat show <file> [app]      print each telemetry record (optionally
 *                                 only the ones tagged <app>) as the
 *                                 shared ASCII snapshot tables
 *   apstat diff <before> <after> [app]
 *                                 print signed after - before of the
 *                                 summed records of each file (gauges
 *                                 show the later level); series that
 *                                 went *down* are flagged as likely
 *                                 regressions / non-comparable runs
 *   apstat sum <file> [app]       print the sum of every matching record
 *                                 (one cumulative view of a whole sweep)
 *
 * Records are matched by their "app" tag; with no [app] filter, all
 * records count. Exit status 1 when a file holds no matching records.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot_io.h"

using namespace sparseap;
using telemetry::NamedSnapshot;
using telemetry::Snapshot;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: apstat show <file> [app]\n"
                 "       apstat diff <before> <after> [app]\n"
                 "       apstat sum <file> [app]\n"
                 "       (<file> is a SPARSEAP_JSON JSON-Lines file)\n");
    return 2;
}

std::vector<NamedSnapshot>
readFile(const std::string &path, const std::string &app_filter)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "apstat: cannot open '%s'\n", path.c_str());
        std::exit(1);
    }
    std::string error;
    std::vector<NamedSnapshot> records =
        telemetry::readTelemetryRecords(in, &error);
    if (!error.empty())
        std::fprintf(stderr, "apstat: %s: %s\n", path.c_str(),
                     error.c_str());
    if (!app_filter.empty()) {
        std::erase_if(records, [&](const NamedSnapshot &r) {
            return r.app != app_filter;
        });
    }
    if (records.empty()) {
        std::fprintf(stderr, "apstat: %s: no matching telemetry records\n",
                     path.c_str());
        std::exit(1);
    }
    return records;
}

/** Fold every record into one cumulative snapshot (counters and
 *  histograms add; gauges keep the last record's level). */
Snapshot
sumRecords(const std::vector<NamedSnapshot> &records)
{
    Snapshot total;
    for (const NamedSnapshot &r : records) {
        for (const auto &[name, value] : r.snap.counters)
            total.counters[name] += value;
        for (const auto &[name, value] : r.snap.gauges)
            total.gauges[name] = value;
        for (const auto &[name, h] : r.snap.histograms) {
            Snapshot::Hist &th = total.histograms[name];
            th.count += h.count;
            th.sum += h.sum;
            for (size_t b = 0; b < Histogram::kBuckets; ++b)
                th.buckets[b] += h.buckets[b];
        }
    }
    return total;
}

int
cmdShow(const std::string &path, const std::string &app)
{
    for (const NamedSnapshot &r : readFile(path, app)) {
        std::cout << "== " << (r.app.empty() ? "?" : r.app) << "\n";
        telemetry::printSnapshot(std::cout, r.snap);
        std::cout << "\n";
    }
    return 0;
}

int
cmdSum(const std::string &path, const std::string &app)
{
    const Snapshot total = sumRecords(readFile(path, app));
    telemetry::printSnapshot(std::cout, total);
    return 0;
}

int
cmdDiff(const std::string &before_path, const std::string &after_path,
        const std::string &app)
{
    const Snapshot before = sumRecords(readFile(before_path, app));
    const Snapshot after = sumRecords(readFile(after_path, app));

    // Signed per-counter deltas over the union of names. A counter
    // that went *down* between runs usually means the runs are not
    // comparable (different app set, fewer iterations, a crashed
    // sweep) — flag it instead of printing a wrapped uint64.
    std::set<std::string> names;
    for (const auto &[name, v] : before.counters)
        names.insert(name);
    for (const auto &[name, v] : after.counters)
        names.insert(name);
    size_t regressions = 0;
    std::cout << "counters (after - before)\n";
    for (const std::string &name : names) {
        const auto bit = before.counters.find(name);
        const auto ait = after.counters.find(name);
        const uint64_t b = bit == before.counters.end() ? 0 : bit->second;
        const uint64_t a = ait == after.counters.end() ? 0 : ait->second;
        if (a == b)
            continue;
        const bool down = a < b;
        const uint64_t mag = down ? b - a : a - b;
        std::cout << "  " << name << " " << (down ? "-" : "+") << mag;
        if (down) {
            std::cout << "  << counter went down; likely regression "
                         "or non-comparable runs";
            ++regressions;
        }
        std::cout << "\n";
    }

    std::cout << "gauges (later level)\n";
    for (const auto &[name, v] : after.gauges)
        std::cout << "  " << name << " " << v << "\n";

    std::cout << "histograms (after - before)\n";
    for (const auto &[name, ah] : after.histograms) {
        const auto bit = before.histograms.find(name);
        const uint64_t bcount =
            bit == before.histograms.end() ? 0 : bit->second.count;
        const uint64_t bsum =
            bit == before.histograms.end() ? 0 : bit->second.sum;
        const bool down = ah.count < bcount;
        std::cout << "  " << name << " count "
                  << (down ? "-" : "+")
                  << (down ? bcount - ah.count : ah.count - bcount)
                  << " sum "
                  << (ah.sum < bsum ? "-" : "+")
                  << (ah.sum < bsum ? bsum - ah.sum : ah.sum - bsum);
        if (down) {
            std::cout << "  << count went down; likely regression "
                         "or non-comparable runs";
            ++regressions;
        }
        std::cout << "\n";
    }

    if (regressions != 0)
        std::cout << regressions
                  << " series went down between runs (see << flags)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() < 2)
        return usage();
    const std::string &cmd = args[0];
    if (cmd == "show" && (args.size() == 2 || args.size() == 3))
        return cmdShow(args[1], args.size() == 3 ? args[2] : "");
    if (cmd == "sum" && (args.size() == 2 || args.size() == 3))
        return cmdSum(args[1], args.size() == 3 ? args[2] : "");
    if (cmd == "diff" && (args.size() == 3 || args.size() == 4))
        return cmdDiff(args[1], args[2],
                       args.size() == 4 ? args[3] : "");
    return usage();
}
