/**
 * @file
 * apstore: command-line front end of the compiled-artifact store.
 *
 *   apstore build [abbr...]   compile + store artifacts (flat automaton,
 *                             hot/cold profiles, prepared partition) for
 *                             the given apps (default: all 26) under the
 *                             standard configuration (1%% / 0.1%%
 *                             profiling at the 24K half-core)
 *   apstore ls [--json]       list cached objects (--json: one JSON
 *                             object per line, machine-readable)
 *   apstore inspect <obj>     dump one blob's header and section table
 *                             (<obj> is a path or a 16-hex digest)
 *   apstore verify            re-validate every object's checksums
 *   apstore gc [--all]        drop stale temp files and invalid blobs
 *                             (--all empties the cache)
 *   apstore stats             summarize the journal (stores per artifact
 *                             kind, bytes written) and the object store
 *                             (object count, on-disk bytes), printed in
 *                             the shared telemetry snapshot format
 *
 * The cache directory comes from SPARSEAP_CACHE_DIR; workload identity
 * (seed, scale, input size, app filter) from the usual SPARSEAP_*
 * variables, so `apstore build` prewarms exactly what the bench binaries
 * will look up.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sparseap.h"
#include "store/artifact.h"
#include "telemetry/metrics.h"

using namespace sparseap;
using store::ArtifactCache;
using store::BlobView;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: apstore <build [abbr...] | ls [--json] | inspect <obj> | "
        "verify | gc [--all] | stats>\n"
        "       (cache directory: SPARSEAP_CACHE_DIR)\n");
    return 2;
}

const ArtifactCache &
cacheOrDie()
{
    const ArtifactCache &cache = ArtifactCache::global();
    if (!cache.enabled())
        fatal("apstore needs SPARSEAP_CACHE_DIR (and SPARSEAP_CACHE not "
              "'off')");
    return cache;
}

int
cmdBuild(const std::vector<std::string> &args)
{
    const ArtifactCache &cache = cacheOrDie();
    ExperimentRunner runner;
    std::vector<std::string> apps =
        args.empty() ? runner.selectApps("HML") : args;

    const double fractions[] = {0.001, 0.01};
    for (const std::string &abbr : apps) {
        const LoadedApp &app = runner.load(abbr);
        app.flat();
        app.prewarmProfiles(fractions);
        for (double f : fractions)
            preparePartition(app,
                             app.execOptions(f, ApConfig::kHalfCore));
        runner.unload(abbr);
    }
    const store::CacheStats s = cache.stats();
    std::printf("built %zu app(s): %llu stored, %llu already cached\n",
                apps.size(), static_cast<unsigned long long>(s.stores),
                static_cast<unsigned long long>(s.hits));
    return 0;
}

/** JSON string escaping for paths (quotes, backslashes, control bytes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

int
cmdLs(bool json)
{
    const ArtifactCache &cache = cacheOrDie();
    // --json emits one object per line (JSON Lines), so daemon startup
    // scripts and tests can enumerate loadable applications without
    // scraping the aligned human table.
    Table table({"Kind", "Digest", "Sections", "Bytes", "Path"});
    size_t count = 0;
    for (const std::string &path : cache.listObjects()) {
        std::string error;
        std::shared_ptr<const BlobView> blob =
            BlobView::open(path, &error);
        if (!blob) {
            if (json)
                std::printf("{\"kind\":\"INVALID\",\"path\":\"%s\"}\n",
                            jsonEscape(path).c_str());
            else
                table.addRow({"INVALID", "-", "-", "-", path});
            ++count;
            continue;
        }
        if (json) {
            std::printf("{\"kind\":\"%s\",\"digest\":\"%s\","
                        "\"sections\":%zu,\"bytes\":%zu,"
                        "\"path\":\"%s\"}\n",
                        artifactKindName(blob->kind()),
                        store::digestHex(blob->digest()).c_str(),
                        blob->sections().size(), blob->fileSize(),
                        jsonEscape(path).c_str());
        } else {
            table.addRow({artifactKindName(blob->kind()),
                          store::digestHex(blob->digest()),
                          std::to_string(blob->sections().size()),
                          std::to_string(blob->fileSize()), path});
        }
        ++count;
    }
    if (!json) {
        table.print(std::cout);
        std::printf("%zu object(s) in %s\n", count, cache.dir().c_str());
    }
    return 0;
}

/** Resolve a CLI object argument: a path, or a digest in the cache. */
std::string
resolveObject(const std::string &arg)
{
    if (arg.size() == 16 &&
        arg.find_first_not_of("0123456789abcdef") == std::string::npos) {
        const ArtifactCache &cache = ArtifactCache::global();
        if (cache.enabled()) {
            const uint64_t digest =
                std::strtoull(arg.c_str(), nullptr, 16);
            return cache.objectPath(digest);
        }
    }
    return arg;
}

/** Name of a FlatAutomaton section relative to its base. */
const char *
faSectionName(uint32_t rel)
{
    static const char *const names[store::kFaSectionCount] = {
        "meta",
        "symbols",
        "reporting",
        "start",
        "succBegin",
        "succ",
        "startTableBegin",
        "startTable",
        "sodStarts",
        "allInputStarts",
        "classOf",
        "classRep",
        "dense.meta",
        "dense.classOf",
        "dense.accept",
        "dense.reporting",
        "dense.allInputStarts",
        "dense.sodStarts",
        "dense.latchable",
        "dense.succBegin",
        "dense.succWordIdx",
        "dense.succWordMask",
        "dense.startBegin",
        "dense.startWordIdx",
        "dense.startWordMask",
        "dense.startSuccBegin",
        "dense.startSuccWordIdx",
        "dense.startSuccWordMask",
        "dfa.meta",
        "dfa.table",
        "dfa.reportBegin",
        "dfa.reportIds",
        "dense.scanMask",
        "dfa.skipIndex",
        "dfa.skipBits",
    };
    return rel < store::kFaSectionCount ? names[rel] : "?";
}

/** Name of an Application section relative to its base. */
const char *
appSectionName(uint32_t rel)
{
    static const char *const names[store::kAppSectionCount] = {
        "meta",          "name",      "abbr",    "nfaNameBegin",
        "nfaNames",      "nfaStateBegin", "symbols", "start",
        "reporting",     "succBegin", "succ",
    };
    return rel < store::kAppSectionCount ? names[rel] : "?";
}

/** Human name of section @p id given the blob's artifact kind. */
std::string
sectionName(store::ArtifactKind kind, uint32_t id)
{
    using store::ArtifactKind;
    switch (kind) {
    case ArtifactKind::FlatAutomaton:
        return faSectionName(id);
    case ArtifactKind::Profile:
        if (id == store::kProfileMeta)
            return "meta";
        if (id == store::kProfileHotWords)
            return "hotWords";
        return "?";
    case ArtifactKind::Partition: {
        static const char *const root[] = {
            "?",
            "meta",
            "layers",
            "hotToOriginal",
            "intermediateTarget",
            "coldToOriginal",
            "originalToCold",
            "coldNfaToOriginal",
            "nfaBatch",
        };
        if (id >= store::kPartHotFaBase)
            return std::string("hot-fa.") +
                   faSectionName(id - store::kPartHotFaBase);
        if (id >= store::kPartColdAppBase)
            return std::string("cold-app.") +
                   appSectionName(id - store::kPartColdAppBase);
        if (id >= store::kPartHotAppBase)
            return std::string("hot-app.") +
                   appSectionName(id - store::kPartHotAppBase);
        if (id <= store::kPartNfaBatch)
            return root[id];
        return "?";
    }
    case ArtifactKind::Raw:
        return "-";
    }
    return "?";
}

/** Print a one-line summary of a DFA attachment at @p base, if any. */
void
printDfaSummary(const BlobView &blob, uint32_t base, const char *label)
{
    if (blob.findSection(base + store::kFaDfaMeta) == nullptr)
        return;
    const auto meta = blob.sectionAs<store::DfaMeta>(
        base + store::kFaDfaMeta);
    const store::SectionEntry *table =
        blob.findSection(base + store::kFaDfaTable);
    if (meta.size() != 1 || table == nullptr)
        return;
    std::printf("  %s  %llu states x %llu classes, %llu table bytes, "
                "%llu report entries\n",
                label, static_cast<unsigned long long>(meta[0].states),
                static_cast<unsigned long long>(meta[0].classes),
                static_cast<unsigned long long>(table->size),
                static_cast<unsigned long long>(meta[0].reportCount));
}

/** Print a one-line summary of the v3 scan tables at @p base, if any. */
void
printScanSummary(const BlobView &blob, uint32_t base, const char *label)
{
    const store::SectionEntry *mask =
        blob.findSection(base + store::kFaDenseScanMask);
    if (mask == nullptr)
        return;
    const auto bits =
        blob.sectionAs<uint64_t>(base + store::kFaDenseScanMask);
    unsigned population = 0;
    for (uint64_t w : bits)
        population += static_cast<unsigned>(__builtin_popcountll(w));
    const auto skip_index =
        blob.sectionAs<uint32_t>(base + store::kFaDfaSkipIndex);
    const auto skip_bits =
        blob.sectionAs<uint64_t>(base + store::kFaDfaSkipBits);
    std::printf("  %s  quiescent mask %u/256 bytes interesting, "
                "%zu skippable dfa state(s) (%zu index + %zu mask "
                "bytes)\n",
                label, population, skip_bits.size() / 4,
                skip_index.size() * sizeof(uint32_t),
                skip_bits.size() * sizeof(uint64_t));
}

int
cmdInspect(const std::string &arg)
{
    const std::string path = resolveObject(arg);
    std::string error;
    std::shared_ptr<const BlobView> blob = BlobView::open(path, &error);
    if (!blob) {
        std::fprintf(stderr, "apstore: %s\n", error.c_str());
        return 1;
    }
    std::printf("%s\n  kind    %s\n  digest  %s\n  size    %zu bytes\n",
                path.c_str(), artifactKindName(blob->kind()),
                store::digestHex(blob->digest()).c_str(),
                blob->fileSize());
    printDfaSummary(*blob, 0, "dfa   ");
    printDfaSummary(*blob, store::kPartHotFaBase, "hot dfa");
    printScanSummary(*blob, 0, "scan  ");
    printScanSummary(*blob, store::kPartHotFaBase, "hot scan");
    Table table({"Id", "Name", "ElemSize", "Offset", "Bytes", "Checksum"});
    for (const store::SectionEntry &e : blob->sections()) {
        table.addRow({std::to_string(e.id),
                      sectionName(blob->kind(), e.id),
                      std::to_string(e.elemSize),
                      std::to_string(e.offset), std::to_string(e.size),
                      store::digestHex(e.checksum)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdVerify()
{
    const ArtifactCache &cache = cacheOrDie();
    size_t ok = 0, bad = 0;
    for (const std::string &path : cache.listObjects()) {
        std::string error;
        if (BlobView::open(path, &error)) {
            ++ok;
        } else {
            ++bad;
            std::fprintf(stderr, "BAD  %s\n", error.c_str());
        }
    }
    std::printf("verified %zu object(s): %zu ok, %zu bad\n", ok + bad, ok,
                bad);
    return bad == 0 ? 0 : 1;
}

int
cmdGc(bool all)
{
    const ArtifactCache &cache = cacheOrDie();
    const ArtifactCache::SweepResult r = cache.gc(all);
    std::printf("scanned %zu object(s), removed %zu (%llu bytes, %zu "
                "invalid)\n",
                r.scanned, r.removed,
                static_cast<unsigned long long>(r.bytesRemoved),
                r.invalid);
    return 0;
}

int
cmdStats()
{
    const ArtifactCache &cache = cacheOrDie();

    // The same Snapshot type the in-process registry exports, so one
    // formatter serves SPARSEAP_STATS summaries, apstat and this tool.
    telemetry::Snapshot s;

    // Journal: one "store <kind> <digest> <bytes>" line per store.
    std::ifstream journal(cache.journalPath());
    uint64_t journal_lines = 0;
    uint64_t journal_bytes = 0;
    std::string line;
    while (std::getline(journal, line)) {
        ++journal_lines;
        std::istringstream iss(line);
        std::string op, kind, digest;
        uint64_t bytes = 0;
        if (iss >> op >> kind >> digest >> bytes && op == "store") {
            s.counters["journal.stores." + kind] += 1;
            journal_bytes += bytes;
        }
    }
    s.counters["journal.lines"] = journal_lines;
    s.counters["journal.bytes_stored"] = journal_bytes;

    // Object store: what is actually on disk right now (the journal is
    // append-only history; gc may have removed objects since).
    uint64_t object_count = 0;
    uint64_t object_bytes = 0;
    for (const std::string &path : cache.listObjects()) {
        ++object_count;
        std::error_code ec;
        const uint64_t bytes = std::filesystem::file_size(path, ec);
        if (!ec)
            object_bytes += bytes;
    }
    s.counters["objects.count"] = object_count;
    s.counters["objects.bytes"] = object_bytes;

    std::printf("cache %s\n", cache.dir().c_str());
    telemetry::printSnapshot(std::cout, s);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (cmd == "build")
        return cmdBuild(args);
    if (cmd == "ls")
        return cmdLs(!args.empty() && args[0] == "--json");
    if (cmd == "inspect")
        return args.size() == 1 ? cmdInspect(args[0]) : usage();
    if (cmd == "verify")
        return cmdVerify();
    if (cmd == "gc")
        return cmdGc(!args.empty() && args[0] == "--all");
    if (cmd == "stats")
        return cmdStats();
    return usage();
}
