/**
 * @file
 * aptop: live terminal dashboard over a running apserved.
 *
 * Polls the daemon's STATS reply (which carries flat totals, rolling-
 * window milli-rates over 10s/1m/5m horizons, and bounded per-tenant
 * labeled series — see docs/OBSERVABILITY.md) and renders a refreshing
 * per-tenant view:
 *
 *   aptop --socket /tmp/ap.sock            refresh every second
 *   aptop --socket /tmp/ap.sock --once     one frame, no clear (CI)
 *   aptop --socket /tmp/ap.sock --json     one frame as JSON, exit
 *   aptop ... --interval MS                poll period
 *
 * Rates come from the server's windows (delta / covered-span computed
 * daemon-side), not from client-side differencing, so a single --once
 * invocation against a warmed daemon already shows live rates.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "telemetry/labels.h"

using namespace sparseap;
using serve::ServeClient;
using serve::StatsReply;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: aptop --socket PATH [--once] [--json] "
                 "[--interval MS]\n");
    return 2;
}

/** Window rates keyed by row name; [0]=10s [1]=1m [2]=5m, milli. */
using WindowMap = std::map<std::string, const uint64_t *>;

double
rate(const WindowMap &w, const std::string &name, size_t horizon)
{
    auto it = w.find(name);
    return it == w.end()
               ? 0.0
               : static_cast<double>(it->second[horizon]) / 1000.0;
}

uint64_t
counter(const std::map<std::string, uint64_t> &c, const std::string &k)
{
    auto it = c.find(k);
    return it == c.end() ? 0 : it->second;
}

uint64_t
tenantCounter(const std::map<std::string, uint64_t> &c,
              const std::string &base, const std::string &tenant)
{
    return counter(c, telemetry::labeledName(base, tenant));
}

double
tenantRate(const WindowMap &w, const std::string &base,
           const std::string &tenant, size_t horizon)
{
    return rate(w, telemetry::labeledName(base, tenant), horizon);
}

void
jsonEscape(std::string *out, const std::string &s)
{
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            out->push_back('\\');
        out->push_back(ch);
    }
}

int
printJson(const StatsReply &reply)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : reply.counters) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        jsonEscape(&out, name);
        out += "\":" + std::to_string(value);
    }
    out += "},\"window_span_us\":[";
    for (size_t h = 0; h < serve::kStatsHorizons; ++h) {
        if (h)
            out += ',';
        out += std::to_string(reply.windowSpanMicros[h]);
    }
    out += "],\"windows\":{";
    first = true;
    for (const serve::StatsWindowRow &row : reply.windows) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        jsonEscape(&out, row.name);
        out += "\":[";
        for (size_t h = 0; h < serve::kStatsHorizons; ++h) {
            if (h)
                out += ',';
            out += std::to_string(row.milli[h]);
        }
        out += ']';
    }
    out += "}}\n";
    std::fputs(out.c_str(), stdout);
    return 0;
}

void
printFrame(const StatsReply &reply)
{
    std::map<std::string, uint64_t> c(reply.counters.begin(),
                                      reply.counters.end());
    WindowMap w;
    for (const serve::StatsWindowRow &row : reply.windows)
        w.emplace(row.name, row.milli);

    std::printf("apserved  streams:%" PRIu64 " resident:%" PRIu64
                " parked:%" PRIu64 " (%.1f KiB)  conns:%" PRIu64
                "-%" PRIu64 "\n",
                counter(c, "serve.active_streams"),
                counter(c, "serve.resident_sessions"),
                counter(c, "serve.parked_sessions"),
                static_cast<double>(counter(c, "serve.parked_bytes")) /
                    1024.0,
                counter(c, "serve.accepted"),
                counter(c, "serve.disconnected"));
    std::printf("totals    requests:%" PRIu64 " admitted:%" PRIu64
                " overload:%" PRIu64 " retry:%" PRIu64 " shed:%" PRIu64
                "  slow:%" PRIu64 "\n",
                counter(c, "serve.requests"),
                counter(c, "serve.admitted"),
                counter(c, "serve.overload"), counter(c, "serve.retry"),
                counter(c, "serve.shed"),
                counter(c, "serve.slow_captured"));
    std::printf("watchdog  ticks:%" PRIu64 " stuck:%" PRIu64
                " stalls:%" PRIu64 "\n",
                counter(c, "serve.watchdog.ticks"),
                counter(c, "serve.watchdog.stuck_workers"),
                counter(c, "serve.watchdog.queue_stalls"));

    static const char *const kHorizonNames[serve::kStatsHorizons] = {
        "10s", "1m", "5m"};
    std::printf("windows   ");
    for (size_t h = 0; h < serve::kStatsHorizons; ++h)
        std::printf("%s:%.1fs ", kHorizonNames[h],
                    static_cast<double>(reply.windowSpanMicros[h]) /
                        1e6);
    std::printf("\n");
    if (!reply.windows.empty()) {
        std::printf("%-22s %10s %10s %10s\n", "rate (per s)",
                    kHorizonNames[0], kHorizonNames[1],
                    kHorizonNames[2]);
        for (const char *name :
             {"serve.requests", "serve.feeds", "serve.fed_bytes"}) {
            std::printf("%-22s %10.1f %10.1f %10.1f\n", name,
                        rate(w, name, 0), rate(w, name, 1),
                        rate(w, name, 2));
        }
        std::printf("%-22s %10.0f %10.0f %10.0f\n",
                    "serve.request_p50_us",
                    rate(w, "serve.request_p50_us", 0),
                    rate(w, "serve.request_p50_us", 1),
                    rate(w, "serve.request_p50_us", 2));
        std::printf("%-22s %10.0f %10.0f %10.0f\n",
                    "serve.request_p99_us",
                    rate(w, "serve.request_p99_us", 0),
                    rate(w, "serve.request_p99_us", 1),
                    rate(w, "serve.request_p99_us", 2));
    }

    // Tenants: every label seen on any serve.* series.
    std::set<std::string> tenants;
    for (const auto &[name, value] : reply.counters) {
        std::string base, label;
        if (telemetry::splitLabeledName(name, &base, &label) &&
            base.rfind("serve.", 0) == 0)
            tenants.insert(label);
    }
    if (tenants.empty()) {
        std::printf("(no per-tenant series yet)\n");
        return;
    }

    std::printf("\n%-10s %8s %8s %9s %9s %5s %5s %5s %5s %9s\n",
                "TENANT", "REQ/S", "SHED/S", "MB/S", "FED_MB", "DFA%",
                "DNS%", "SPR%", "SKIP%", "PARKED_KB");
    for (const std::string &t : tenants) {
        const uint64_t dfa = tenantCounter(c, "serve.dfa_cycles", t);
        const uint64_t dense =
            tenantCounter(c, "serve.dense_cycles", t);
        const uint64_t sparse =
            tenantCounter(c, "serve.sparse_cycles", t);
        const uint64_t cycles = dfa + dense + sparse;
        const uint64_t skipped =
            tenantCounter(c, "serve.skip_symbols", t);
        const double denom =
            cycles == 0 ? 1.0 : static_cast<double>(cycles);
        std::printf(
            "%-10s %8.1f %8.1f %9.2f %9.2f %5.1f %5.1f %5.1f %5.1f "
            "%9.1f\n",
            t.c_str(), tenantRate(w, "serve.requests", t, 0),
            tenantRate(w, "serve.sheds", t, 0),
            tenantRate(w, "serve.fed_bytes", t, 0) / 1e6,
            static_cast<double>(
                tenantCounter(c, "serve.fed_bytes", t)) /
                1e6,
            100.0 * static_cast<double>(dfa) / denom,
            100.0 * static_cast<double>(dense) / denom,
            100.0 * static_cast<double>(sparse) / denom,
            100.0 * static_cast<double>(skipped) / denom,
            static_cast<double>(
                tenantCounter(c, "serve.parked_bytes", t)) /
                1024.0);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    bool once = false;
    bool json = false;
    unsigned interval_ms = 1000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value)
            socket_path = argv[++i];
        else if (arg == "--once")
            once = true;
        else if (arg == "--json")
            json = true;
        else if (arg == "--interval" && has_value)
            interval_ms =
                static_cast<unsigned>(std::stoul(argv[++i]));
        else
            return usage();
    }
    if (socket_path.empty())
        return usage();

    ServeClient client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "aptop: %s\n", error.c_str());
        return 1;
    }

    for (;;) {
        StatsReply reply;
        const ServeClient::Result r = client.stats(&reply);
        if (r.status != ServeClient::Status::Ok) {
            std::fprintf(stderr, "aptop: stats request failed\n");
            return 1;
        }
        if (json)
            return printJson(reply);
        if (!once)
            std::printf("\x1b[2J\x1b[H"); // clear + home
        printFrame(reply);
        std::fflush(stdout);
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}
