#!/usr/bin/env python3
"""Validate a SPARSEAP_LOG structured event-log file (JSON Lines).

Each line must be one JSON object with the schema
(docs/OBSERVABILITY.md §Event log):
  - "ts_us": non-negative int (telemetry::nowMicros timebase);
  - "level": one of debug|info|warn|error;
  - "event": non-empty dotted string (e.g. "serve.request.slow");
  - any further members are string or integer payload fields.

Checks (exit 0 = valid, 1 = invalid):
  - every non-empty line parses and matches the schema;
  - ts_us is monotonically non-decreasing across lines;
  - optionally (--require EVENT, repeatable) an event with that name
    appears; with --require-field EVENT:FIELD the named event must also
    carry the named field.

Usage: check_log.py LOG.jsonl [--require serve.request.slow
                               --require-field serve.request.slow:request_id]
"""

import argparse
import json
import sys

LEVELS = {"debug", "info", "warn", "error"}


def fail(msg):
    print(f"check_log: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", help="SPARSEAP_LOG JSON-Lines file")
    parser.add_argument("--require", action="append", default=[],
                        metavar="EVENT",
                        help="event name that must appear (repeatable)")
    parser.add_argument("--require-field", action="append", default=[],
                        metavar="EVENT:FIELD",
                        help="event that must appear carrying FIELD")
    args = parser.parse_args()

    try:
        with open(args.log, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        return fail(f"{args.log}: {e}")

    events = {}  # name -> set of fields seen
    count = 0
    last_ts = -1
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(f"line {i}: not JSON: {e}")
        if not isinstance(obj, dict):
            return fail(f"line {i}: not an object")
        ts = obj.get("ts_us")
        if not isinstance(ts, int) or ts < 0:
            return fail(f"line {i}: missing non-negative int ts_us")
        if ts < last_ts:
            return fail(f"line {i}: ts_us {ts} goes backwards "
                        f"(prev {last_ts})")
        last_ts = ts
        if obj.get("level") not in LEVELS:
            return fail(f"line {i}: level {obj.get('level')!r} not in "
                        f"{sorted(LEVELS)}")
        event = obj.get("event")
        if not isinstance(event, str) or not event:
            return fail(f"line {i}: missing event name")
        for key, value in obj.items():
            if key in ("ts_us", "level", "event"):
                continue
            if not isinstance(value, (str, int)):
                return fail(f"line {i} ({event}): field {key!r} is "
                            f"{type(value).__name__}, expected str/int")
        events.setdefault(event, set()).update(obj.keys())
        count += 1

    if count == 0:
        return fail("no events")

    missing = [n for n in args.require if n not in events]
    if missing:
        return fail(f"required events absent: {', '.join(missing)}; "
                    f"present: {', '.join(sorted(events))}")
    for spec in args.require_field:
        event, _, field = spec.partition(":")
        if not field:
            return fail(f"--require-field {spec!r}: expected EVENT:FIELD")
        if event not in events:
            return fail(f"required event absent: {event}")
        if field not in events[event]:
            return fail(f"event {event} never carried field {field!r}; "
                        f"saw: {', '.join(sorted(events[event]))}")

    print(f"check_log: OK: {count} events, {len(events)} event names")
    return 0


if __name__ == "__main__":
    sys.exit(main())
