#!/usr/bin/env python3
"""Validate a SPARSEAP_TRACE output file as well-formed Chrome trace JSON.

Checks (exit 0 = valid, 1 = invalid):
  - the file parses as JSON and has a `traceEvents` list;
  - every event is a complete event ("ph":"X") with a non-empty name,
    numeric ts/dur (dur >= 0) and pid/tid fields;
  - within each tid, begin timestamps are monotonically non-decreasing
    (the writer sorts on flush; a violation means interleaved sessions
    or a clock bug);
  - request-scoped spans nest: every span carrying a numeric
    args.req lies inside [ts, ts+dur] of its request's `serve.request`
    root span (same tid);
  - optionally (--require NAME, repeatable), a span with that name is
    present somewhere in the trace.

With --slow-dump the input is instead a slow-request capture dump (the
JSON object SlowRequestRing::writeJson emits, record "slow_requests"):
every captured request must have a request_id, a latency, and a span
tree whose spans[0] is the depth-0 `serve.request` root containing all
children.

Usage:
  check_trace.py TRACE.json [--require flatten --require hot_run ...]
  check_trace.py --slow-dump SLOW.json [--require serve.request ...]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def check_slow_dump(doc, require):
    if doc.get("record") != "slow_requests":
        return fail("slow dump: record != 'slow_requests'")
    reqs = doc.get("requests")
    if not isinstance(reqs, list):
        return fail("slow dump: missing requests list")
    if not reqs:
        return fail("slow dump: no captured requests")
    names = set()
    for i, req in enumerate(reqs):
        where = f"request {i}"
        for key in ("request_id", "latency_us"):
            if not isinstance(req.get(key), int):
                return fail(f"{where}: missing numeric {key}")
        spans = req.get("spans")
        if not isinstance(spans, list) or not spans:
            return fail(f"{where}: missing span tree")
        root = spans[0]
        if root.get("name") != "serve.request" or root.get("depth") != 0:
            return fail(f"{where}: spans[0] must be the depth-0 "
                        "serve.request root")
        r0, r1 = root["t0_us"], root["t0_us"] + root["dur_us"]
        for j, sp in enumerate(spans):
            for key in ("t0_us", "dur_us", "depth"):
                if not isinstance(sp.get(key), int):
                    return fail(f"{where} span {j}: missing {key}")
            if sp["t0_us"] < r0 or sp["t0_us"] + sp["dur_us"] > r1:
                return fail(f"{where} span {j} ({sp.get('name')}): "
                            "outside the serve.request root")
            names.add(sp.get("name"))
    missing = [n for n in require if n not in names]
    if missing:
        return fail(f"required spans absent: {', '.join(missing)}; "
                    f"present: {', '.join(sorted(map(str, names)))}")
    print(f"check_trace: OK: {len(reqs)} slow requests, "
          f"{len(names)} span names")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace file written by SPARSEAP_TRACE")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear in the trace (repeatable)",
    )
    parser.add_argument(
        "--slow-dump",
        action="store_true",
        help="input is a SlowRequestRing JSON dump, not a Chrome trace",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: {e}")

    if args.slow_dump:
        return check_slow_dump(doc, args.require)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing or non-list traceEvents")
    if not events:
        return fail("traceEvents is empty")

    names = set()
    last_ts = {}  # tid -> last begin timestamp
    roots = {}  # (tid, req) -> (ts, ts+dur) of serve.request
    request_spans = []  # (index, ev) carrying args.req
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object")
        if ev.get("ph") != "X":
            return fail(f"{where}: ph={ev.get('ph')!r}, expected "
                        "complete event 'X'")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            return fail(f"{where}: missing name")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(ev.get(key), (int, float)):
                return fail(f"{where} ({name}): missing numeric {key}")
        if ev["dur"] < 0:
            return fail(f"{where} ({name}): negative dur {ev['dur']}")
        tid = ev["tid"]
        if tid in last_ts and ev["ts"] < last_ts[tid]:
            return fail(f"{where} ({name}): ts {ev['ts']} goes backwards "
                        f"on tid {tid} (prev {last_ts[tid]})")
        last_ts[tid] = ev["ts"]
        names.add(name)

        req = ev.get("args", {}).get("req")
        if isinstance(req, int):
            if name == "serve.request":
                roots[(tid, req)] = (ev["ts"], ev["ts"] + ev["dur"])
            else:
                request_spans.append((i, ev))

    # Nesting sanity: request-tagged child spans lie inside their
    # request's root span on the same thread.
    for i, ev in request_spans:
        key = (ev["tid"], ev["args"]["req"])
        if key not in roots:
            return fail(f"event {i} ({ev['name']}): args.req "
                        f"{key[1]} has no serve.request root on its tid")
        r0, r1 = roots[key]
        if ev["ts"] < r0 or ev["ts"] + ev["dur"] > r1:
            return fail(f"event {i} ({ev['name']}): outside its "
                        f"serve.request root [{r0}, {r1}]")

    missing = [n for n in args.require if n not in names]
    if missing:
        return fail(f"required spans absent: {', '.join(missing)}; "
                    f"present: {', '.join(sorted(names))}")

    print(f"check_trace: OK: {len(events)} events, "
          f"{len(names)} span names, {len(last_ts)} threads, "
          f"{len(roots)} request roots")
    return 0


if __name__ == "__main__":
    sys.exit(main())
