#!/usr/bin/env python3
"""Validate a SPARSEAP_TRACE output file as well-formed Chrome trace JSON.

Checks (exit 0 = valid, 1 = invalid):
  - the file parses as JSON and has a `traceEvents` list;
  - every event is a complete event ("ph":"X") with a non-empty name,
    numeric ts/dur (dur >= 0) and pid/tid fields;
  - within each tid, begin timestamps are monotonically non-decreasing
    (the writer sorts on flush; a violation means interleaved sessions
    or a clock bug);
  - optionally (--require NAME, repeatable), a span with that name is
    present somewhere in the trace.

Usage: check_trace.py TRACE.json [--require flatten --require hot_run ...]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace file written by SPARSEAP_TRACE")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear in the trace (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing or non-list traceEvents")
    if not events:
        return fail("traceEvents is empty")

    names = set()
    last_ts = {}  # tid -> last begin timestamp
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object")
        if ev.get("ph") != "X":
            return fail(f"{where}: ph={ev.get('ph')!r}, expected "
                        "complete event 'X'")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            return fail(f"{where}: missing name")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(ev.get(key), (int, float)):
                return fail(f"{where} ({name}): missing numeric {key}")
        if ev["dur"] < 0:
            return fail(f"{where} ({name}): negative dur {ev['dur']}")
        tid = ev["tid"]
        if tid in last_ts and ev["ts"] < last_ts[tid]:
            return fail(f"{where} ({name}): ts {ev['ts']} goes backwards "
                        f"on tid {tid} (prev {last_ts[tid]})")
        last_ts[tid] = ev["ts"]
        names.add(name)

    missing = [n for n in args.require if n not in names]
    if missing:
        return fail(f"required spans absent: {', '.join(missing)}; "
                    f"present: {', '.join(sorted(names))}")

    print(f"check_trace: OK: {len(events)} events, "
          f"{len(names)} span names, {len(last_ts)} threads")
    return 0


if __name__ == "__main__":
    sys.exit(main())
